"""ASAP/ALAP/mobility/height priority tests."""

import pytest

from repro.ir.cdfg import build_data_dependence_graph
from repro.ir.ops import Operation, OpKind, Value
from repro.sched.priority import (
    alap_schedule,
    asap_schedule,
    mobility,
    path_height,
)


def v(name):
    return Value(name)


def chain():
    """c1 -> add -> mul -> sub (serial chain)."""
    c1 = Operation(OpKind.CONST, result=v("c"), const=1)
    add = Operation(OpKind.ADD, result=v("a"), operands=(v("c"), v("c")))
    mul = Operation(OpKind.MUL, result=v("m"), operands=(v("a"), v("a")))
    sub = Operation(OpKind.SUB, result=v("s"), operands=(v("m"), v("a")))
    ops = [c1, add, mul, sub]
    return ops, build_data_dependence_graph(ops)


def test_asap_respects_latency():
    (c1, add, mul, sub), ddg = chain()[0], chain()[1]
    ops, ddg = chain()
    c1, add, mul, sub = ops
    asap = asap_schedule(ddg)
    assert asap[c1] == 0
    assert asap[add] == 1          # const latency 1
    assert asap[mul] == 2
    assert asap[sub] == 4          # mul latency 2


def test_alap_deadline_defaults_to_asap_makespan():
    ops, ddg = chain()
    asap = asap_schedule(ddg)
    alap = alap_schedule(ddg)
    for op in ops:
        assert alap[op] >= asap[op]
    # The chain is fully serial: no slack anywhere.
    assert all(alap[op] == asap[op] for op in ops)


def test_mobility_zero_on_critical_path():
    ops, ddg = chain()
    assert all(m == 0 for m in mobility(ddg).values())


def test_mobility_positive_off_critical_path():
    c1 = Operation(OpKind.CONST, result=v("c"), const=1)
    long1 = Operation(OpKind.MUL, result=v("m"), operands=(v("c"), v("c")))
    long2 = Operation(OpKind.MUL, result=v("n"), operands=(v("m"), v("m")))
    side = Operation(OpKind.ADD, result=v("a"), operands=(v("c"), v("c")))
    join = Operation(OpKind.ADD, result=v("j"), operands=(v("n"), v("a")))
    ddg = build_data_dependence_graph([c1, long1, long2, side, join])
    mob = mobility(ddg)
    assert mob[long1] == 0 and mob[long2] == 0
    assert mob[side] > 0


def test_path_height_decreases_along_edges():
    ops, ddg = chain()
    height = path_height(ddg)
    for src, dst in ddg.edges():
        assert height[src] > height[dst]


def test_path_height_of_sink_is_own_latency():
    ops, ddg = chain()
    sub = ops[-1]
    assert path_height(ddg)[sub] == 1


def test_custom_latency_function():
    ops, ddg = chain()
    flat = lambda op: 1
    asap = asap_schedule(ddg, flat)
    assert asap[ops[-1]] == 3  # all unit latency


def test_empty_graph():
    import networkx as nx
    empty = nx.DiGraph()
    assert asap_schedule(empty) == {}
    assert alap_schedule(empty) == {}
    assert path_height(empty) == {}

"""ASIC local-buffer vs shared-memory model tests."""

import pytest

from repro.ir.ops import Operation, OpKind, Value
from repro.sched.asic_memory import (
    local_buffer_words,
    make_latency_fn,
    shared_memory_traffic,
)
from repro.tech.resources import operation_latency


def v(name):
    return Value(name)


def load(symbol):
    return Operation(OpKind.LOAD, result=v(f"x_{symbol}"),
                     operands=(v("i"),), symbol=symbol)


def store(symbol):
    return Operation(OpKind.STORE, operands=(v("i"), v("val")), symbol=symbol)


SIZES = {"small": 256, "big": 4096, "exact": 1024}


def test_small_array_keeps_default_latency(library):
    latency_of = make_latency_fn(SIZES, library)
    assert latency_of(load("small")) == operation_latency(OpKind.LOAD)


def test_big_array_gets_shared_latency(library):
    latency_of = make_latency_fn(SIZES, library)
    assert latency_of(load("big")) == library.asic_shared_mem_latency
    assert latency_of(store("big")) == library.asic_shared_mem_latency


def test_boundary_array_is_local(library):
    latency_of = make_latency_fn(SIZES, library)
    assert latency_of(load("exact")) == operation_latency(OpKind.LOAD)


def test_non_memory_ops_unaffected(library):
    latency_of = make_latency_fn(SIZES, library)
    mul = Operation(OpKind.MUL, result=v("m"), operands=(v("a"), v("b")))
    assert latency_of(mul) == operation_latency(OpKind.MUL)


def test_shared_traffic_counts_weighted_by_ex_times(library):
    block_ops = {"body": [load("big"), store("big"), load("small")]}
    reads, writes = shared_memory_traffic(block_ops, {"body": 10},
                                          SIZES, library)
    assert reads == 10
    assert writes == 10


def test_shared_traffic_zero_for_local_arrays(library):
    block_ops = {"body": [load("small"), store("small")]}
    assert shared_memory_traffic(block_ops, {"body": 5}, SIZES, library) == (0, 0)


def test_shared_traffic_skips_unexecuted_blocks(library):
    block_ops = {"cold": [load("big")]}
    assert shared_memory_traffic(block_ops, {}, SIZES, library) == (0, 0)


def test_local_buffer_words_sums_distinct_local_arrays(library):
    block_ops = {
        "b1": [load("small"), load("big")],
        "b2": [store("small"), load("exact")],
    }
    # 'small' counted once, 'exact' counted, 'big' excluded (shared).
    assert local_buffer_words(block_ops, SIZES, library) == 256 + 1024


def test_local_buffer_words_empty(library):
    assert local_buffer_words({}, SIZES, library) == 0

"""Resource-constrained list-scheduler tests."""

import pytest

from repro.ir.ops import Operation, OpKind, Value
from repro.lang import compile_source
from repro.sched.list_scheduler import (
    ScheduleError,
    datapath_ops,
    hw_dependence_graph,
    list_schedule,
)
from repro.tech.resources import ResourceKind, ResourceSet


def v(name):
    return Value(name)


def independent_adds(count):
    ops = []
    for i in range(count):
        ops.append(Operation(OpKind.CONST, result=v(f"c{i}"), const=i))
        ops.append(Operation(OpKind.ADD, result=v(f"a{i}"),
                             operands=(v(f"c{i}"), v(f"c{i}"))))
    return ops


def alus(n):
    return ResourceSet(f"alu{n}", {ResourceKind.ALU: n})


# ---------------------------------------------------------------------------
# Filtering and dependence graph
# ---------------------------------------------------------------------------

def test_datapath_ops_excludes_control_and_wires():
    ops = [
        Operation(OpKind.CONST, result=v("c"), const=1),
        Operation(OpKind.MOV, result=v("m"), operands=(v("c"),)),
        Operation(OpKind.ADD, result=v("a"), operands=(v("m"), v("m"))),
        Operation(OpKind.JUMP),
    ]
    body = datapath_ops(ops)
    assert [op.kind for op in body] == [OpKind.ADD]


def test_wire_contraction_preserves_transitive_deps():
    c = Operation(OpKind.CONST, result=v("c"), const=1)
    add = Operation(OpKind.ADD, result=v("a"), operands=(v("c"), v("c")))
    mov = Operation(OpKind.MOV, result=v("m"), operands=(v("a"),))
    mul = Operation(OpKind.MUL, result=v("p"), operands=(v("m"), v("m")))
    ddg = hw_dependence_graph([c, add, mov, mul])
    assert set(ddg.nodes) == {add, mul}
    assert ddg.has_edge(add, mul)


# ---------------------------------------------------------------------------
# Scheduling behaviour
# ---------------------------------------------------------------------------

def test_serial_on_one_alu():
    schedule = list_schedule(independent_adds(4), alus(1))
    schedule.verify()
    assert schedule.makespan == 4
    starts = sorted(e.start for e in schedule.entries)
    assert starts == [0, 1, 2, 3]


def test_parallel_on_two_alus():
    schedule = list_schedule(independent_adds(4), alus(2))
    schedule.verify()
    assert schedule.makespan == 2


def test_dependences_respected():
    c = Operation(OpKind.CONST, result=v("c"), const=1)
    a = Operation(OpKind.ADD, result=v("a"), operands=(v("c"), v("c")))
    b = Operation(OpKind.ADD, result=v("b"), operands=(v("a"), v("a")))
    schedule = list_schedule([c, a, b], alus(2))
    schedule.verify()
    start = {e.op: e.start for e in schedule.entries}
    assert start[b] >= start[a] + 1


def test_multicycle_op_blocks_resource():
    rs = ResourceSet("m1", {ResourceKind.MULTIPLIER: 1})
    ops = []
    for i in range(2):
        ops.append(Operation(OpKind.CONST, result=v(f"c{i}"), const=i))
        ops.append(Operation(OpKind.MUL, result=v(f"m{i}"),
                             operands=(v(f"c{i}"), v(f"c{i}"))))
    schedule = list_schedule(ops, rs)
    schedule.verify()
    assert schedule.makespan == 4  # two 2-cycle muls serialized


def test_compare_falls_back_to_alu():
    rs = alus(1)  # no comparator in the set
    c = Operation(OpKind.CONST, result=v("c"), const=1)
    cmp_op = Operation(OpKind.LT, result=v("lt"), operands=(v("c"), v("c")))
    schedule = list_schedule([c, cmp_op], rs)
    entry = next(e for e in schedule.entries if e.op is cmp_op)
    assert entry.resource is ResourceKind.ALU


def test_comparator_preferred_when_available():
    rs = ResourceSet("s", {ResourceKind.ALU: 1, ResourceKind.COMPARATOR: 1})
    c = Operation(OpKind.CONST, result=v("c"), const=1)
    cmp_op = Operation(OpKind.LT, result=v("lt"), operands=(v("c"), v("c")))
    schedule = list_schedule([c, cmp_op], rs)
    entry = next(e for e in schedule.entries if e.op is cmp_op)
    assert entry.resource is ResourceKind.COMPARATOR


def test_unexecutable_op_raises():
    with pytest.raises(ScheduleError):
        list_schedule([
            Operation(OpKind.CONST, result=v("c"), const=1),
            Operation(OpKind.MUL, result=v("m"), operands=(v("c"), v("c"))),
        ], alus(2))


def test_empty_block():
    schedule = list_schedule([Operation(OpKind.JUMP)], alus(1))
    assert schedule.makespan == 0
    assert schedule.entries == []


def test_critical_path_prioritized():
    # A long serial chain plus independent ops on one ALU: the makespan
    # should equal the chain length (chain ops never wait on fillers).
    ops = []
    ops.append(Operation(OpKind.CONST, result=v("x0"), const=1))
    for i in range(5):
        ops.append(Operation(OpKind.ADD, result=v(f"x{i+1}"),
                             operands=(v(f"x{i}"), v(f"x{i}"))))
    for i in range(3):
        ops.append(Operation(OpKind.CONST, result=v(f"f{i}"), const=i))
        ops.append(Operation(OpKind.ADD, result=v(f"g{i}"),
                             operands=(v(f"f{i}"), v(f"f{i}"))))
    schedule = list_schedule(ops, alus(2))
    schedule.verify()
    assert schedule.makespan == 5


def test_schedule_deterministic():
    ops1 = independent_adds(6)
    s1 = list_schedule(ops1, alus(2))
    s2 = list_schedule(ops1, alus(2))
    assert [(e.op.op_id, e.start) for e in s1.entries] == \
        [(e.op.op_id, e.start) for e in s2.entries]


def test_custom_latency_function_respected():
    c = Operation(OpKind.CONST, result=v("i"), const=0)
    load = Operation(OpKind.LOAD, result=v("x"), operands=(v("i"),), symbol="big")
    rs = ResourceSet("m", {ResourceKind.MEMPORT: 1, ResourceKind.ALU: 1})
    slow = lambda op: 16 if op.kind is OpKind.LOAD else 1
    schedule = list_schedule([c, load], rs, latency_of=slow)
    entry = next(e for e in schedule.entries if e.op is load)
    assert entry.latency == 16
    assert schedule.makespan == 16


def test_verify_catches_capacity_violation():
    schedule = list_schedule(independent_adds(3), alus(1))
    # Corrupt: move everything to step 0.
    from repro.sched.list_scheduler import Schedule, ScheduledOp
    bad = Schedule(
        entries=[ScheduledOp(op=e.op, start=0, latency=e.latency,
                             resource=e.resource) for e in schedule.entries],
        makespan=1, resource_set=schedule.resource_set)
    with pytest.raises(ScheduleError):
        bad.verify()


def test_real_program_blocks_schedule(resource_sets):
    src = """
    func f(a: int[64], n: int) -> int {
        var s: int = 0;
        for i in 0 .. n { s = s + a[i] * (i + 1); }
        return s;
    }
    """
    cdfg = compile_source(src, entry="f").cdfgs["f"]
    rs = resource_sets[2]  # medium (has a multiplier)
    for block in cdfg.blocks.values():
        schedule = list_schedule(block.ops, rs)
        schedule.verify()

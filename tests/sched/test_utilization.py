"""Cluster metrics (U_R, GEQ, E_R) tests."""

import pytest

from repro.ir.ops import Operation, OpKind, Value
from repro.sched.binding import bind_schedule
from repro.sched.list_scheduler import list_schedule
from repro.sched.utilization import cluster_metrics
from repro.tech.resources import ResourceKind, ResourceSet


def v(name):
    return Value(name)


def serial_adds(count, prefix="x"):
    ops = [Operation(OpKind.CONST, result=v(f"{prefix}0"), const=1)]
    for i in range(count):
        ops.append(Operation(OpKind.ADD, result=v(f"{prefix}{i+1}"),
                             operands=(v(f"{prefix}{i}"), v(f"{prefix}{i}"))))
    return ops


def metrics_for(ops, resource_set, library, ex_times=None, block="b"):
    schedules = {block: list_schedule(ops, resource_set)}
    binding = bind_schedule(schedules, library)
    return cluster_metrics(binding, ex_times or {block: 1}, library), binding


def test_fully_busy_single_alu_utilization_one(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    metrics, _ = metrics_for(serial_adds(4), rs, library)
    assert metrics.utilization == pytest.approx(1.0)


def test_utilization_halves_with_idle_instance(library):
    # A serial chain uses one ALU fully; a second instance appears only for
    # one parallel op and idles otherwise.
    rs = ResourceSet("a2", {ResourceKind.ALU: 2})
    ops = serial_adds(4)
    ops.append(Operation(OpKind.CONST, result=v("q0"), const=5))
    ops.append(Operation(OpKind.ADD, result=v("q1"),
                         operands=(v("q0"), v("q0"))))
    metrics, binding = metrics_for(ops, rs, library)
    assert binding.instance_counts[ResourceKind.ALU] == 2
    assert 0.5 < metrics.utilization < 0.8


def test_total_cycles_weighted_by_ex_times(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    schedules = {"body": list_schedule(serial_adds(3), rs)}
    binding = bind_schedule(schedules, library)
    m1 = cluster_metrics(binding, {"body": 1}, library)
    m10 = cluster_metrics(binding, {"body": 10}, library)
    assert m10.total_cycles == 10 * m1.total_cycles
    # Utilization is scale-invariant.
    assert m10.utilization == pytest.approx(m1.utilization)


def test_unexecuted_block_contributes_nothing(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    schedules = {
        "hot": list_schedule(serial_adds(3), rs),
        "cold": list_schedule(serial_adds(5, prefix="y"), rs),
    }
    binding = bind_schedule(schedules, library)
    metrics = cluster_metrics(binding, {"hot": 4, "cold": 0}, library)
    assert metrics.total_cycles == 4 * schedules["hot"].makespan


def test_energy_estimate_formula(library):
    # Paper line 11: E_R = U_R * sum(E_active * active_cycles).
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    metrics, _ = metrics_for(serial_adds(4), rs, library,
                             ex_times={"b": 7})
    active = 4 * 7
    expected = (metrics.utilization * active
                * library.spec(ResourceKind.ALU).energy_active_pj / 1000.0)
    assert metrics.energy_estimate_nj == pytest.approx(expected)


def test_detailed_energy_includes_idle(library):
    rs = ResourceSet("a2", {ResourceKind.ALU: 2})
    ops = serial_adds(4)
    ops.append(Operation(OpKind.CONST, result=v("q0"), const=5))
    ops.append(Operation(OpKind.ADD, result=v("q1"),
                         operands=(v("q0"), v("q0"))))
    metrics, _ = metrics_for(ops, rs, library)
    assert metrics.energy_detailed_nj > metrics.energy_estimate_nj


def test_clock_is_slowest_instantiated_resource(library):
    rs = ResourceSet("mix", {ResourceKind.ALU: 1, ResourceKind.MULTIPLIER: 1})
    ops = serial_adds(2)
    ops.append(Operation(OpKind.MUL, result=v("m"),
                         operands=(v("x1"), v("x2"))))
    metrics, _ = metrics_for(ops, rs, library)
    assert metrics.clock_ns == library.spec(ResourceKind.MULTIPLIER).t_cyc_ns
    assert metrics.execution_time_ns == metrics.total_cycles * metrics.clock_ns


def test_size_weighted_variant_differs_with_mixed_sizes(library):
    rs = ResourceSet("mix", {ResourceKind.ALU: 1, ResourceKind.MULTIPLIER: 1})
    ops = serial_adds(6)
    ops.append(Operation(OpKind.MUL, result=v("m"),
                         operands=(v("x1"), v("x2"))))
    metrics, _ = metrics_for(ops, rs, library)
    # The multiplier is mostly idle and much bigger than the ALU, so the
    # size-weighted utilization is lower than the unweighted one.
    assert metrics.utilization_size_weighted < metrics.utilization


def test_empty_cluster(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    schedules = {"b": list_schedule([Operation(OpKind.JUMP)], rs)}
    binding = bind_schedule(schedules, library)
    metrics = cluster_metrics(binding, {"b": 3}, library)
    assert metrics.utilization == 0.0
    assert metrics.geq == 0
    assert metrics.energy_estimate_nj == 0.0

"""Fig. 4 binding-algorithm tests."""

import pytest

from repro.ir.ops import Operation, OpKind, Value
from repro.sched.binding import bind_schedule
from repro.sched.list_scheduler import ScheduleError, list_schedule
from repro.tech.resources import ResourceKind, ResourceSet


def v(name):
    return Value(name)


def serial_adds(count):
    ops = [Operation(OpKind.CONST, result=v("x0"), const=1)]
    for i in range(count):
        ops.append(Operation(OpKind.ADD, result=v(f"x{i+1}"),
                             operands=(v(f"x{i}"), v(f"x{i}"))))
    return ops


def parallel_adds(count):
    ops = []
    for i in range(count):
        ops.append(Operation(OpKind.CONST, result=v(f"c{i}"), const=i))
        ops.append(Operation(OpKind.ADD, result=v(f"a{i}"),
                             operands=(v(f"c{i}"), v(f"c{i}"))))
    return ops


def bind_one(ops, resource_set, library, block="b"):
    schedules = {block: list_schedule(ops, resource_set)}
    return bind_schedule(schedules, library), schedules


def test_serial_chain_uses_one_instance(library):
    rs = ResourceSet("a2", {ResourceKind.ALU: 2})
    binding, _ = bind_one(serial_adds(5), rs, library)
    assert binding.instance_counts == {ResourceKind.ALU: 1}


def test_parallel_ops_force_second_instance(library):
    rs = ResourceSet("a2", {ResourceKind.ALU: 2})
    binding, _ = bind_one(parallel_adds(4), rs, library)
    assert binding.instance_counts[ResourceKind.ALU] == 2


def test_geq_matches_instances(library):
    rs = ResourceSet("a2", {ResourceKind.ALU: 2})
    binding, _ = bind_one(parallel_adds(4), rs, library)
    expected = sum(library.spec(inst.kind).geq for inst in binding.instances)
    assert binding.geq == expected


def test_instances_shared_across_blocks(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    schedules = {
        "b1": list_schedule(serial_adds(2), rs),
        "b2": list_schedule(serial_adds(2), rs),
    }
    binding = bind_schedule(schedules, library)
    # One shared ALU serves both blocks (they never run simultaneously).
    assert binding.instance_counts == {ResourceKind.ALU: 1}


def test_every_scheduled_op_assigned(library):
    rs = ResourceSet("a2", {ResourceKind.ALU: 2})
    binding, schedules = bind_one(parallel_adds(6), rs, library)
    scheduled_ops = {e.op for e in schedules["b"].entries}
    assert set(binding.assignment) == scheduled_ops


def test_no_instance_double_booked(library):
    rs = ResourceSet("mixed", {ResourceKind.ALU: 2, ResourceKind.MULTIPLIER: 1,
                               ResourceKind.COMPARATOR: 1})
    ops = parallel_adds(3)
    ops.append(Operation(OpKind.MUL, result=v("m"),
                         operands=(v("a0"), v("a1"))))
    ops.append(Operation(OpKind.LT, result=v("lt"),
                         operands=(v("a0"), v("a2"))))
    binding, schedules = bind_one(ops, rs, library)
    start = {e.op: (e.start, e.end) for e in schedules["b"].entries}
    by_instance = {}
    for op, key in binding.assignment.items():
        by_instance.setdefault(key, []).append(start[op])
    for intervals in by_instance.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2, "instance double-booked"


def test_smallest_compatible_type_instantiated_first(library):
    rs = ResourceSet("cmp", {ResourceKind.ALU: 1, ResourceKind.COMPARATOR: 1})
    ops = [
        Operation(OpKind.CONST, result=v("c"), const=1),
        Operation(OpKind.LT, result=v("lt"), operands=(v("c"), v("c"))),
    ]
    binding, _ = bind_one(ops, rs, library)
    # Footnote 13: the smallest (comparator) is instantiated, not the ALU.
    assert ResourceKind.COMPARATOR in binding.instance_counts
    assert ResourceKind.ALU not in binding.instance_counts


def test_reuse_preferred_over_new_instance(library):
    # Two compares in different steps must share one comparator.
    rs = ResourceSet("cmp", {ResourceKind.ALU: 1, ResourceKind.COMPARATOR: 2})
    ops = [
        Operation(OpKind.CONST, result=v("c"), const=1),
        Operation(OpKind.LT, result=v("l1"), operands=(v("c"), v("c"))),
        Operation(OpKind.GT, result=v("l2"), operands=(v("l1"), v("c"))),
    ]
    binding, _ = bind_one(ops, rs, library)
    assert binding.instance_counts[ResourceKind.COMPARATOR] == 1


def test_mixed_resource_sets_rejected(library):
    rs1 = ResourceSet("a", {ResourceKind.ALU: 1})
    rs2 = ResourceSet("b", {ResourceKind.ALU: 2})
    schedules = {
        "b1": list_schedule(serial_adds(1), rs1),
        "b2": list_schedule(serial_adds(1), rs2),
    }
    with pytest.raises(ScheduleError):
        bind_schedule(schedules, library)


def test_busy_cycles_accounting(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    binding, _ = bind_one(serial_adds(3), rs, library)
    inst = binding.instances[0]
    assert inst.busy_cycles("b") == 3


def test_block_makespans_recorded(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    binding, schedules = bind_one(serial_adds(3), rs, library)
    assert binding.block_makespans == {"b": schedules["b"].makespan}

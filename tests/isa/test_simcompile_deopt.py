"""Negative paths of the compiled engine's deoptimisation.

When a hand-written image jumps into a basic-block *interior* (an
``r31``/RET game no compiler output produces), the compiled engine
reconstructs interpreter state mid-run and finishes in the reference
interpreter.  The happy path is covered by
``test_engine_equivalence.py``; these tests pin the nasty half of the
contract: a run that *faults after* deoptimising must fault exactly like
a from-scratch reference run — same exception type, same message, same
already-charged counters left behind — and a deopt that lands straight
on a faulting instruction must not disturb the fault either.
"""

import pytest

from repro.isa.image import ProgramImage
from repro.isa.instructions import Instruction, Opcode
from repro.isa.simulator import SimError, Simulator
from repro.mem.bus import SharedBus
from repro.mem.cache import Cache, CacheConfig
from repro.mem.main_memory import MainMemory
from repro.mem.trace import MemoryTrace
from repro.tech import cmos6_library


def make_image(instructions, name="hand"):
    attribution = [(name, "body")] * len(instructions)
    return ProgramImage(
        name=name,
        instructions=instructions,
        entry_pc=0,
        function_ranges={name: (0, len(instructions))},
        symbol_addresses={},
        attribution=attribution,
        frame_sizes={},
    )


def assert_same_result(compiled, reference):
    assert compiled.result == reference.result
    assert compiled.cycles == reference.cycles
    assert compiled.instructions == reference.instructions
    assert compiled.energy_nj == reference.energy_nj  # bit-exact
    assert compiled.stall_cycles == reference.stall_cycles
    assert compiled.taken_branches == reference.taken_branches
    assert compiled.hw_instructions == reference.hw_instructions
    assert compiled.hw_entries == reference.hw_entries
    assert compiled.block_cycles == reference.block_cycles
    assert compiled.block_energy_nj == reference.block_energy_nj
    assert compiled.block_counts == reference.block_counts
    assert compiled.resource_active_cycles == reference.resource_active_cycles


def _deopt_prologue():
    """A loop that accumulates real counters, then a RET into an interior.

    The loop makes the pre-deopt machine state non-trivial (branch
    counts, per-block counters, partial sums), so state reconstruction
    has something to get wrong.
    """
    return [
        Instruction(Opcode.LI, rd=2, imm=5),             # counter
        Instruction(Opcode.LI, rd=3, imm=0),             # accumulator
        Instruction(Opcode.ADD, rd=3, rs1=3, rs2=2),     # loop body
        Instruction(Opcode.ADDI, rd=2, rs1=2, imm=-1),
        Instruction(Opcode.BNZ, rs1=2, target=2),
        Instruction(Opcode.LI, rd=31, imm=8),            # interior target
        Instruction(Opcode.RET),                         # deopt here
        Instruction(Opcode.LI, rd=3, imm=999),           # skipped leader
    ]


def test_mid_run_deopt_matches_from_scratch_reference():
    code = _deopt_prologue() + [
        Instruction(Opcode.ADDI, rd=1, rs1=3, imm=100),  # pc 8: interior
        Instruction(Opcode.HALT),
    ]
    image = make_image(code)
    library = cmos6_library()
    compiled = Simulator(image, library, engine="compiled").run()
    reference = Simulator(image, library, engine="reference").run()
    assert compiled.result == 115  # 5+4+3+2+1 = 15, +100
    assert_same_result(compiled, reference)


@pytest.mark.parametrize("fault_tail,message", [
    ([Instruction(Opcode.LI, rd=4, imm=0),               # pc 8: interior
      Instruction(Opcode.DIV, rd=1, rs1=3, rs2=4),
      Instruction(Opcode.HALT)], "division by zero at pc 9"),
    ([Instruction(Opcode.LI, rd=4, imm=0),
      Instruction(Opcode.REM, rd=1, rs1=3, rs2=4),
      Instruction(Opcode.HALT)], "modulo by zero at pc 9"),
    ([Instruction(Opcode.LI, rd=4, imm=-4),
      Instruction(Opcode.LW, rd=1, rs1=4, imm=0),
      Instruction(Opcode.HALT)], "load fault at pc 9: address -0x4"),
    ([Instruction(Opcode.LI, rd=4, imm=-4),
      Instruction(Opcode.SW, rs1=4, rs2=3, imm=0),
      Instruction(Opcode.HALT)], "store fault at pc 9: address -0x4"),
    ([Instruction(Opcode.JMP, target=77)], "pc out of range: 77"),
], ids=["div", "rem", "load", "store", "wild-jump"])
def test_fault_after_deopt_matches_reference_fault(fault_tail, message):
    """The resumed interpreter faults exactly like a from-scratch run."""
    image = make_image(_deopt_prologue() + fault_tail)
    library = cmos6_library()
    for engine in ("compiled", "reference"):
        sim = Simulator(image, library, engine=engine)
        with pytest.raises(SimError) as excinfo:
            sim.run()
        assert str(excinfo.value) == message, engine


def test_deopt_landing_directly_on_faulting_instruction():
    # The interior pc itself faults: the very first resumed step.
    code = _deopt_prologue() + [
        Instruction(Opcode.DIV, rd=1, rs1=3, rs2=0),     # pc 8: r0 == 0
        Instruction(Opcode.HALT),
    ]
    image = make_image(code)
    library = cmos6_library()
    messages = []
    for engine in ("compiled", "reference"):
        with pytest.raises(SimError) as excinfo:
            Simulator(image, library, engine=engine).run()
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1] == "division by zero at pc 8"


def test_fuel_exhaustion_after_deopt_matches_reference():
    # The interior code spins forever; fuel accounting must carry the
    # pre-deopt instructions, so both engines report the same message at
    # the same budget.
    code = _deopt_prologue() + [
        Instruction(Opcode.JMP, target=8),               # pc 8: spin
    ]
    image = make_image(code)
    library = cmos6_library()
    for engine in ("compiled", "reference"):
        sim = Simulator(image, library, max_instructions=200, engine=engine)
        with pytest.raises(SimError) as excinfo:
            sim.run()
        assert str(excinfo.value) == "fuel exhausted after 200 instructions"


def test_deopt_with_memory_system_and_trace_stays_bit_identical():
    """Counters and the reference trace survive the engine hand-off."""
    code = _deopt_prologue() + [
        Instruction(Opcode.LI, rd=4, imm=64),            # pc 8: interior
        Instruction(Opcode.SW, rs1=4, rs2=3, imm=0),
        Instruction(Opcode.LW, rd=5, rs1=4, imm=0),
        Instruction(Opcode.ADD, rd=1, rs1=5, rs2=3),
        Instruction(Opcode.HALT),
    ]
    image = make_image(code)
    config = CacheConfig(size_bytes=256, line_bytes=16, associativity=2,
                         miss_penalty=8)
    runs = {}
    for engine in ("compiled", "reference"):
        library = cmos6_library()
        trace = MemoryTrace()
        sim = Simulator(image, library,
                        icache=Cache(config, "icache"),
                        dcache=Cache(config, "dcache"),
                        memory_model=MainMemory(library),
                        bus=SharedBus(library),
                        trace=trace, engine=engine)
        result = sim.run()
        runs[engine] = (result, trace.events,
                        sim.icache.snapshot(), sim.dcache.snapshot(),
                        sim.memory_model.word_reads,
                        sim.memory_model.word_writes)
    assert_same_result(runs["compiled"][0], runs["reference"][0])
    assert runs["compiled"][1:] == runs["reference"][1:]


def test_deopt_result_is_reproducible_on_rerun():
    # The compiled program object is cached on the simulator; a second
    # run after a deopt must reset state and deopt identically.
    code = _deopt_prologue() + [
        Instruction(Opcode.ADDI, rd=1, rs1=3, imm=7),    # pc 8
        Instruction(Opcode.HALT),
    ]
    sim = Simulator(make_image(code), cmos6_library(), engine="compiled")
    first = sim.run()
    second = sim.run()
    assert_same_result(first, second)

"""Explicit tests of the SL32 calling convention and frame layout
(documented in docs/ISA.md and repro/isa/codegen.py)."""

import pytest

from repro.isa.image import link_program
from repro.isa.instructions import (
    Instruction,
    Opcode,
    RA_REG,
    RETVAL_REG,
    SP_REG,
    WORD_BYTES,
)
from repro.lang import compile_source


def function_code(source, name):
    image = link_program(compile_source(source, entry="main"))
    start, end = image.function_ranges[name]
    return image.instructions[start:end], image


CALLER_SRC = """
func callee(a: int, b: int, c: int) -> int { return a + b * c; }
func main() -> int { return callee(10, 20, 30); }
"""


def test_prologue_allocates_frame_and_saves_ra():
    code, _ = function_code(CALLER_SRC, "callee")
    # First instruction: sp -= frame.
    assert code[0].opcode is Opcode.ADDI
    assert code[0].rd == SP_REG and code[0].rs1 == SP_REG
    assert code[0].imm < 0
    # Second: save ra into the frame.
    assert code[1].opcode is Opcode.SW
    assert code[1].rs2 == RA_REG and code[1].rs1 == SP_REG


def test_epilogue_restores_ra_pops_frame_returns():
    code, _ = function_code(CALLER_SRC, "callee")
    assert code[-1].opcode is Opcode.RET
    assert code[-2].opcode is Opcode.ADDI
    assert code[-2].imm == -code[0].imm  # pop matches push
    restore_ra = code[-3]
    assert restore_ra.opcode is Opcode.LW and restore_ra.rd == RA_REG


def test_incoming_args_loaded_from_frame_top():
    code, _ = function_code(CALLER_SRC, "callee")
    frame = -code[0].imm
    arg_loads = [i for i in code
                 if i.opcode is Opcode.LW and i.rs1 == SP_REG
                 and i.comment.startswith("param")]
    assert len(arg_loads) == 3
    offsets = sorted(frame - load.imm for load in arg_loads)
    # arg i lives at sp_caller - 4*(i+1), i.e. offset-from-top 4*(i+1).
    assert offsets == [WORD_BYTES, 2 * WORD_BYTES, 3 * WORD_BYTES]


def test_outgoing_args_stored_below_sp():
    code, _ = function_code(CALLER_SRC, "main")
    arg_stores = [i for i in code
                  if i.opcode is Opcode.SW and i.rs1 == SP_REG and i.imm < 0]
    offsets = sorted(store.imm for store in arg_stores)
    assert offsets == [-3 * WORD_BYTES, -2 * WORD_BYTES, -WORD_BYTES]


def test_return_value_travels_in_r1():
    code, _ = function_code(CALLER_SRC, "callee")
    # Before jumping to the epilogue, the result is moved into r1.
    movs = [i for i in code if i.opcode is Opcode.MOV and i.rd == RETVAL_REG]
    assert movs
    # And the epilogue never clobbers r1.
    epilogue_writes = [i for i in code[-4:] if i.rd == RETVAL_REG
                       and i.opcode is not Opcode.RET]
    assert not epilogue_writes


def test_callee_saves_registers_it_uses():
    src = """
    func busy(a: int) -> int {
        var x: int = a * 2;
        var y: int = x + 3;
        var z: int = y ^ x;
        return z - a;
    }
    func main() -> int { return busy(5); }
    """
    code, _ = function_code(src, "busy")
    import re
    saves = [i for i in code[:10]
             if i.opcode is Opcode.SW
             and re.match(r"save r\d", i.comment)]
    restores = [i for i in code[-10:]
                if i.opcode is Opcode.LW
                and re.match(r"restore r\d", i.comment)]
    saved_regs = sorted(i.rs2 for i in saves)
    restored_regs = sorted(i.rd for i in restores)
    assert saved_regs == restored_regs
    assert all(2 <= r <= 23 for r in saved_regs)


def test_local_arrays_at_frame_bottom():
    src = """
    func f() -> int {
        var buf: int[8];
        buf[0] = 7;
        return buf[0];
    }
    func main() -> int { return f(); }
    """
    code, image = function_code(src, "f")
    # The array base is sp + fixed offset with offset < array region size.
    bases = [i for i in code if i.opcode is Opcode.ADDI
             and i.rs1 == SP_REG and "&buf" in i.comment]
    assert bases
    assert 0 <= bases[0].imm < image.frame_sizes["f"]


def test_values_survive_across_calls():
    # A caller-held value must survive the callee (callee-saved scheme).
    src = """
    func clobber() -> int {
        var a: int = 1; var b: int = 2; var c: int = 3;
        var d: int = 4; var e: int = 5;
        return a + b + c + d + e;
    }
    func main() -> int {
        var keep: int = 777;
        var x: int = clobber();
        return keep + x;
    }
    """
    from repro.isa.simulator import Simulator
    from repro.tech import cmos6_library
    image = link_program(compile_source(src))
    assert Simulator(image, cmos6_library()).run().result == 777 + 15

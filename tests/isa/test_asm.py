"""SL32 assembler tests."""

import pytest

from repro.isa.asm import AsmError, assemble, assemble_image
from repro.isa.instructions import Opcode
from repro.isa.simulator import Simulator
from repro.tech import cmos6_library


def run_asm(source):
    sim = Simulator(assemble_image(source), cmos6_library())
    return sim.run()


def test_loop_program_runs():
    result = run_asm("""
    # sum 10 + 9 + ... + 1
        li   r2, 10
        li   r3, 0
    loop:
        add  r3, r3, r2
        addi r2, r2, -1
        bnz  r2, loop
        mov  r1, r3
        halt
    """)
    assert result.result == 55


def test_memory_operands():
    result = run_asm("""
        li  r2, 777
        sw  r2, [sp-8]
        lw  r1, [sp + -8]
        halt
    """)
    assert result.result == 777


def test_register_aliases():
    code = assemble("mov r1, zero\nmov r2, sp\nmov r3, ra\n")
    assert [(i.rd, i.rs1) for i in code] == [(1, 0), (2, 29), (3, 31)]


def test_call_and_ret():
    result = run_asm("""
        call f
        halt
    f:
        li  r1, 9
        ret
    """)
    assert result.result == 9


def test_bez_and_labels_on_same_line():
    result = run_asm("""
        li r2, 0
        bez r2, skip
        li r1, 111
        halt
    skip: li r1, 222
        halt
    """)
    assert result.result == 222


def test_mul_div_rem():
    result = run_asm("""
        li  r2, -17
        li  r3, 5
        div r4, r2, r3
        rem r5, r2, r3
        mul r6, r4, r3
        add r1, r6, r5
        halt
    """)
    assert result.result == -17  # (a/b)*b + a%b == a


def test_shift_variants():
    result = run_asm("""
        li   r2, 3
        slli r3, r2, 4
        li   r4, 2
        srl  r1, r3, r4
        halt
    """)
    assert result.result == 12


def test_opcode_mapping_complete():
    # Every documented mnemonic assembles to the matching opcode.
    for mnemonic in ("add", "sub", "and", "or", "xor", "mul", "div", "rem",
                     "seq", "sne", "slt", "sle", "sgt", "sge", "sll", "srl"):
        instr = assemble(f"{mnemonic} r1, r2, r3")[0]
        assert instr.opcode is Opcode(mnemonic)


def test_errors():
    with pytest.raises(AsmError):
        assemble("frobnicate r1, r2")
    with pytest.raises(AsmError):
        assemble("add r1, r2")          # arity
    with pytest.raises(AsmError):
        assemble("li r99, 1")           # bad register
    with pytest.raises(AsmError):
        assemble("li r1, banana")       # bad immediate
    with pytest.raises(AsmError):
        assemble("jmp nowhere")         # unknown label
    with pytest.raises(AsmError):
        assemble("x: nop\nx: nop")      # duplicate label
    with pytest.raises(AsmError):
        assemble("lw r1, sp")           # bad memory operand
    with pytest.raises(AsmError):
        assemble_image("# nothing\n")   # empty program


def test_comments_and_blank_lines_ignored():
    code = assemble("""
    # full-line comment

        nop   # trailing comment
    """)
    assert len(code) == 1
    assert code[0].opcode is Opcode.NOP

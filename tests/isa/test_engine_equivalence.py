"""Compiled-vs-reference engine equivalence.

The compiled basic-block engine (:mod:`repro.isa.simcompile`) must be
observably *bit-identical* to the reference interpreter: same SimResult
down to float energies, same cache counters, same memory-trace events,
same fault types and messages.  These tests run both engines side by side
on hand-built images that exercise every opcode family, hardware-shadow
blocks, cache/bus wiring, tracing, deoptimisation, and the fault paths,
plus one real compiled application.
"""

import pytest

from repro.isa.image import ProgramImage, STACK_TOP, link_program
from repro.isa.instructions import Instruction, Opcode
from repro.isa.simulator import SimError, Simulator
from repro.mem.bus import SharedBus
from repro.mem.cache import Cache, CacheConfig
from repro.mem.main_memory import MainMemory
from repro.mem.trace import MemoryTrace
from repro.tech import cmos6_library


def make_image(instructions, attribution=None, name="hand"):
    attribution = attribution or [(name, "body")] * len(instructions)
    return ProgramImage(
        name=name,
        instructions=instructions,
        entry_pc=0,
        function_ranges={name: (0, len(instructions))},
        symbol_addresses={},
        attribution=attribution,
        frame_sizes={},
    )


def assert_same_result(compiled, reference):
    assert compiled.result == reference.result
    assert compiled.cycles == reference.cycles
    assert compiled.instructions == reference.instructions
    assert compiled.energy_nj == reference.energy_nj  # bit-exact
    assert compiled.stall_cycles == reference.stall_cycles
    assert compiled.taken_branches == reference.taken_branches
    assert compiled.hw_instructions == reference.hw_instructions
    assert compiled.hw_entries == reference.hw_entries
    assert compiled.block_cycles == reference.block_cycles
    assert compiled.block_energy_nj == reference.block_energy_nj
    assert compiled.block_counts == reference.block_counts
    assert compiled.resource_active_cycles == reference.resource_active_cycles


def run_both(image, *args, sim_kwargs=None, globals_init=None):
    results = []
    for engine in ("compiled", "reference"):
        kwargs = dict(sim_kwargs or {})
        sim = Simulator(image, cmos6_library(), engine=engine, **kwargs)
        for name, values in (globals_init or {}).items():
            sim.set_global(name, values)
        results.append(sim.run(*args))
    assert_same_result(results[0], results[1])
    return results[0]


def test_alu_opcode_mix_equivalent():
    code = [
        Instruction(Opcode.LI, rd=2, imm=0x7FFFFFFF),
        Instruction(Opcode.LI, rd=3, imm=-17),
        Instruction(Opcode.ADD, rd=4, rs1=2, rs2=3),     # wrap territory
        Instruction(Opcode.SUB, rd=5, rs1=3, rs2=2),
        Instruction(Opcode.MUL, rd=6, rs1=2, rs2=3),
        Instruction(Opcode.AND, rd=7, rs1=2, rs2=3),
        Instruction(Opcode.OR, rd=8, rs1=2, rs2=3),
        Instruction(Opcode.XOR, rd=9, rs1=2, rs2=3),
        Instruction(Opcode.NOT, rd=10, rs1=3),
        Instruction(Opcode.NEG, rd=11, rs1=2),
        Instruction(Opcode.SLT, rd=12, rs1=3, rs2=2),
        Instruction(Opcode.SLE, rd=13, rs1=2, rs2=2),
        Instruction(Opcode.SGT, rd=14, rs1=3, rs2=2),
        Instruction(Opcode.SGE, rd=15, rs1=2, rs2=3),
        Instruction(Opcode.SEQ, rd=16, rs1=2, rs2=2),
        Instruction(Opcode.SNE, rd=17, rs1=2, rs2=3),
        Instruction(Opcode.LI, rd=18, imm=4),
        Instruction(Opcode.SLL, rd=19, rs1=3, rs2=18),
        Instruction(Opcode.SRL, rd=20, rs1=3, rs2=18),
        Instruction(Opcode.SLLI, rd=21, rs1=2, imm=33),  # shift amount & 31
        Instruction(Opcode.DIV, rd=22, rs1=3, rs2=18),
        Instruction(Opcode.REM, rd=23, rs1=3, rs2=18),
        Instruction(Opcode.ADDI, rd=24, rs1=2, imm=-1),
        Instruction(Opcode.MOV, rd=25, rs1=24),
        Instruction(Opcode.NOP),
        Instruction(Opcode.ADD, rd=1, rs1=4, rs2=22),
        Instruction(Opcode.HALT),
    ]
    run_both(make_image(code))


def test_zero_register_write_sink_equivalent():
    code = [
        Instruction(Opcode.LI, rd=0, imm=1234),
        Instruction(Opcode.ADDI, rd=0, rs1=0, imm=99),
        Instruction(Opcode.MOV, rd=1, rs1=0),
        Instruction(Opcode.HALT),
    ]
    assert run_both(make_image(code)).result == 0


def test_loop_branches_and_calls_equivalent():
    # sum 1..10 via a CALL/RET loop body; exercises BNZ/BEZ both ways.
    code = [
        Instruction(Opcode.LI, rd=2, imm=10),           # counter
        Instruction(Opcode.LI, rd=3, imm=0),            # accumulator
        Instruction(Opcode.BEZ, rs1=2, target=7),       # loop exit
        Instruction(Opcode.CALL, target=9),             # body: r3 += r2
        Instruction(Opcode.ADDI, rd=2, rs1=2, imm=-1),
        Instruction(Opcode.BNZ, rs1=2, target=3),
        Instruction(Opcode.BEZ, rs1=0, target=7),       # always taken
        Instruction(Opcode.MOV, rd=1, rs1=3),
        Instruction(Opcode.HALT),
        Instruction(Opcode.ADD, rd=3, rs1=3, rs2=2),    # callee
        Instruction(Opcode.RET),
    ]
    result = run_both(make_image(code))
    assert result.result == sum(range(1, 11))
    assert result.taken_branches > 0


def test_memory_caches_bus_and_trace_equivalent():
    # Strided load/store loop crossing cache lines, full memory system +
    # trace on both engines; compare every counter and the event stream.
    code = [
        Instruction(Opcode.LI, rd=2, imm=64),            # iterations
        Instruction(Opcode.LI, rd=3, imm=1024),          # base address
        Instruction(Opcode.LW, rd=4, rs1=3, imm=0),
        Instruction(Opcode.ADDI, rd=4, rs1=4, imm=7),
        Instruction(Opcode.SW, rs1=3, rs2=4, imm=512),
        Instruction(Opcode.ADDI, rd=3, rs1=3, imm=20),   # stride 20B
        Instruction(Opcode.ADDI, rd=2, rs1=2, imm=-1),
        Instruction(Opcode.BNZ, rs1=2, target=2),
        Instruction(Opcode.MOV, rd=1, rs1=4),
        Instruction(Opcode.HALT),
    ]
    image = make_image(code)
    outcomes = {}
    for engine in ("compiled", "reference"):
        icache = Cache(CacheConfig(size_bytes=256, line_bytes=16,
                                   associativity=2, miss_penalty=8),
                       name="icache")
        dcache = Cache(CacheConfig(size_bytes=128, line_bytes=16,
                                   associativity=1, miss_penalty=6),
                       name="dcache")
        library = cmos6_library()
        memory_model = MainMemory(library)
        bus = SharedBus(library)
        trace = MemoryTrace()
        sim = Simulator(image, library, icache=icache,
                        dcache=dcache, memory_model=memory_model, bus=bus,
                        trace=trace, engine=engine)
        result = sim.run()
        outcomes[engine] = (result, icache.snapshot(), dcache.snapshot(),
                            memory_model.word_reads,
                            memory_model.word_writes, trace.events)
    compiled, reference = outcomes["compiled"], outcomes["reference"]
    assert_same_result(compiled[0], reference[0])
    assert compiled[1] == reference[1]          # icache stats
    assert compiled[2] == reference[2]          # dcache stats
    assert compiled[3:5] == reference[3:5]      # main-memory words
    assert compiled[5] == reference[5]          # exact trace event order


def test_hw_shadow_blocks_equivalent():
    # Middle region attributed to a hw block: functional-only there.
    code = [
        Instruction(Opcode.LI, rd=2, imm=5),
        Instruction(Opcode.LI, rd=3, imm=0),
        Instruction(Opcode.ADD, rd=3, rs1=3, rs2=2),     # hw region start
        Instruction(Opcode.ADDI, rd=2, rs1=2, imm=-1),
        Instruction(Opcode.BNZ, rs1=2, target=2),        # hw region end
        Instruction(Opcode.MOV, rd=1, rs1=3),
        Instruction(Opcode.HALT),
    ]
    attribution = ([("hand", "head")] * 2 + [("hand", "loop")] * 3
                   + [("hand", "tail")] * 2)
    image = make_image(code, attribution=attribution)
    result = run_both(image,
                      sim_kwargs={"hw_blocks": {("hand", "loop")}})
    assert result.result == 15
    assert result.hw_instructions > 0
    assert result.hw_entries >= 1


def test_deopt_on_jump_into_block_interior():
    # A hand-written r31 makes RET land mid-block: the compiled engine
    # must deoptimise into the reference interpreter and still agree.
    code = [
        Instruction(Opcode.LI, rd=2, imm=3),
        Instruction(Opcode.LI, rd=31, imm=4),    # non-leader target
        Instruction(Opcode.RET),                 # jumps to pc 4
        Instruction(Opcode.LI, rd=1, imm=999),   # skipped block leader
        Instruction(Opcode.ADDI, rd=1, rs1=2, imm=39),   # block interior
        Instruction(Opcode.HALT),
    ]
    result = run_both(make_image(code))
    assert result.result == 42


@pytest.mark.parametrize("engine", ["compiled", "reference"])
def test_fault_messages_identical(engine):
    cases = [
        ([Instruction(Opcode.LI, rd=2, imm=0),
          Instruction(Opcode.DIV, rd=1, rs1=2, rs2=2),
          Instruction(Opcode.HALT)], "division by zero at pc 1"),
        ([Instruction(Opcode.LI, rd=2, imm=0),
          Instruction(Opcode.REM, rd=1, rs1=2, rs2=2),
          Instruction(Opcode.HALT)], "modulo by zero at pc 1"),
        ([Instruction(Opcode.LI, rd=2, imm=-8),
          Instruction(Opcode.LW, rd=1, rs1=2, imm=0),
          Instruction(Opcode.HALT)], "load fault at pc 1: address -0x8"),
        ([Instruction(Opcode.LI, rd=2, imm=-8),
          Instruction(Opcode.SW, rs1=2, rs2=2, imm=0),
          Instruction(Opcode.HALT)], "store fault at pc 1: address -0x8"),
        ([Instruction(Opcode.JMP, target=99)], "pc out of range: 99"),
        ([Instruction(Opcode.BNZ, rs1=29, target=-5)],
         "pc out of range: -5"),
    ]
    for code, message in cases:
        sim = Simulator(make_image(code), cmos6_library(), engine=engine)
        with pytest.raises(SimError) as excinfo:
            sim.run()
        assert str(excinfo.value) == message


@pytest.mark.parametrize("engine", ["compiled", "reference"])
def test_fuel_exhaustion_message(engine):
    code = [Instruction(Opcode.JMP, target=0)]
    sim = Simulator(make_image(code), cmos6_library(),
                    max_instructions=100, engine=engine)
    with pytest.raises(SimError) as excinfo:
        sim.run()
    assert str(excinfo.value) == "fuel exhausted after 100 instructions"


def test_real_application_equivalent():
    # End to end on a real compiled app with the full memory system.
    from repro.apps import app_by_name
    from repro.power.system import default_cache_configs

    app = app_by_name("ckey")
    image = link_program(app.compile())
    icfg, dcfg = default_cache_configs()
    outcomes = {}
    for engine in ("compiled", "reference"):
        library = cmos6_library()
        sim = Simulator(image, library,
                        icache=Cache(icfg, "icache"),
                        dcache=Cache(dcfg, "dcache"),
                        memory_model=MainMemory(library),
                        bus=SharedBus(library), engine=engine)
        for name, values in app.globals_init.items():
            sim.set_global(name, values)
        result = sim.run(*app.args)
        outcomes[engine] = (result, sim.icache.snapshot(),
                            sim.dcache.snapshot())
    assert_same_result(outcomes["compiled"][0], outcomes["reference"][0])
    assert outcomes["compiled"][1] == outcomes["reference"][1]
    assert outcomes["compiled"][2] == outcomes["reference"][2]


def test_engine_rejects_unknown_name():
    code = [Instruction(Opcode.HALT)]
    with pytest.raises(ValueError):
        Simulator(make_image(code), cmos6_library(), engine="turbo")

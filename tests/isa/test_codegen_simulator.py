"""Code generator + simulator tests.

The central property: for any program, the SL32 simulation must compute the
same result and the same global-memory effects as the reference CDFG
interpreter (differential testing).
"""

import pytest

from repro.isa.image import (
    GLOBALS_BASE,
    LinkError,
    ProgramImage,
    STACK_TOP,
    layout_globals,
    link_program,
)
from repro.isa.instructions import Opcode
from repro.isa.simulator import SimError, Simulator
from repro.lang import Interpreter, compile_source
from repro.tech import cmos6_library


def run_both(source, *args, globals_init=None, entry="main"):
    """Run interpreter and simulator; return (ref_result, sim_result, sim)."""
    program = compile_source(source, entry=entry)
    interp = Interpreter(program)
    for name, values in (globals_init or {}).items():
        interp.set_global(name, values)
    expected = interp.run(*args)

    image = link_program(program)
    sim = Simulator(image, cmos6_library())
    for name, values in (globals_init or {}).items():
        sim.set_global(name, values)
    result = sim.run(*args)
    return expected, result, sim


def assert_equivalent(source, *args, globals_init=None, check=None):
    expected, result, sim = run_both(source, *args, globals_init=globals_init)
    assert result.result == expected
    if check:
        check(sim)
    return result


# ---------------------------------------------------------------------------
# Differential correctness
# ---------------------------------------------------------------------------

def test_constant_return():
    assert_equivalent("func main() -> int { return 42; }")


def test_arguments_arrive():
    assert_equivalent("func main(a: int, b: int) -> int { return a * 10 + b; }",
                      7, 3)


def test_arithmetic_mix():
    src = """
    func main(a: int, b: int) -> int {
        return ((a + b) * (a - b)) ^ (a << 2) | (b >> 1) & 0xFF;
    }
    """
    assert_equivalent(src, 123, 45)


def test_division_and_modulo():
    assert_equivalent(
        "func main(a: int, b: int) -> int { return a / b * 1000 + a % b; }",
        -17, 5)


def test_loop_accumulation():
    assert_equivalent(
        "func main(n: int) -> int { var s: int = 0;"
        " for i in 0 .. n { s = s + i * i; } return s; }", 50)


def test_nested_control_flow():
    src = """
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n {
            if i % 3 == 0 { s = s + i; }
            else { if i % 3 == 1 { s = s - i; } else { s = s ^ i; } }
        }
        return s;
    }
    """
    assert_equivalent(src, 30)


def test_while_with_break_continue():
    src = """
    func main() -> int {
        var i: int = 0;
        var s: int = 0;
        while 1 {
            i = i + 1;
            if i > 20 { break; }
            if i % 2 { continue; }
            s = s + i;
        }
        return s;
    }
    """
    assert_equivalent(src)


def test_function_calls_and_reference_arrays():
    src = """
    func scale(a: int[8], k: int) -> void {
        for i in 0 .. 8 { a[i] = a[i] * k; }
    }
    func total(a: int[8]) -> int {
        var s: int = 0;
        for i in 0 .. 8 { s = s + a[i]; }
        return s;
    }
    func main() -> int {
        var buf: int[8];
        for i in 0 .. 8 { buf[i] = i + 1; }
        scale(buf, 3);
        return total(buf);
    }
    """
    assert_equivalent(src)


def test_recursion_deep_enough_to_stress_stack():
    src = """
    func sum(n: int) -> int {
        if n == 0 { return 0; }
        return n + sum(n - 1);
    }
    func main(n: int) -> int { return sum(n); }
    """
    assert_equivalent(src, 60)


def test_global_arrays_roundtrip():
    src = """
    global inp: int[16];
    global outp: int[16];
    func main() -> int {
        var s: int = 0;
        for i in 0 .. 16 { outp[i] = inp[i] * 2 + 1; s = s + outp[i]; }
        return s;
    }
    """
    init = {"inp": list(range(16))}
    expected, result, sim = run_both(src, globals_init=init)
    assert result.result == expected
    assert sim.get_global("outp", 16) == [2 * i + 1 for i in range(16)]


def test_scalar_globals_shared_across_functions():
    src = """
    global acc: int;
    func add(x: int) -> void { acc = acc + x; }
    func main() -> int { add(5); add(7); add(30); return acc; }
    """
    assert_equivalent(src)


def test_register_pressure_spills_are_correct():
    # 30 simultaneously live values force spilling (22 allocatable regs).
    decls = "\n".join(f"var v{i}: int = {i} * 3 + 1;" for i in range(30))
    uses = " + ".join(f"v{i}" for i in range(30))
    src = f"func main() -> int {{ {decls} return {uses}; }}"
    assert_equivalent(src)


def test_overflow_wraps_identically():
    src = """
    func main() -> int {
        var x: int = 0x7FFFFFFF;
        return x + 1;
    }
    """
    result = assert_equivalent(src)
    assert result.result == -2**31


def test_large_local_array_in_frame():
    src = """
    func main() -> int {
        var buf: int[256];
        for i in 0 .. 256 { buf[i] = i; }
        var s: int = 0;
        for i in 0 .. 256 { s = s + buf[i]; }
        return s;
    }
    """
    result = assert_equivalent(src)
    assert result.result == 255 * 256 // 2


# ---------------------------------------------------------------------------
# Cycle/energy accounting sanity
# ---------------------------------------------------------------------------

def test_cycles_and_instructions_positive():
    _, result, _ = run_both("func main() -> int { return 1; }")
    assert result.cycles >= result.instructions >= 3  # stub + body


def test_block_cycles_sum_to_total():
    src = """
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n { s = s + i; }
        return s;
    }
    """
    _, result, _ = run_both(src, 20)
    assert sum(result.block_cycles.values()) == result.cycles


def test_block_energy_sums_to_total():
    _, result, _ = run_both(
        "func main(n: int) -> int { return n * n; }", 5)
    assert sum(result.block_energy_nj.values()) == pytest.approx(
        result.energy_nj)


def test_energy_per_cycle_near_anchor():
    src = """
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n { s = s + i * 3; }
        return s;
    }
    """
    _, result, _ = run_both(src, 200)
    per_cycle = result.energy_nj / result.cycles
    assert 8.0 <= per_cycle <= 20.0  # around the 14 nJ/cycle anchor


def test_utilization_between_zero_and_one():
    _, result, _ = run_both(
        "func main(n: int) -> int { var s: int = 0;"
        " for i in 0 .. n { s = s + i; } return s; }", 50)
    assert 0.0 < result.utilization < 1.0


def test_multiplier_idle_without_multiplies():
    from repro.isa.instructions import UPResource
    _, result, _ = run_both(
        "func main(n: int) -> int { var s: int = 0;"
        " for i in 0 .. n { s = s + i; } return s; }", 50)
    assert result.resource_active_cycles[UPResource.MULTIPLIER] == 0


def test_function_attribution():
    src = """
    func leaf(x: int) -> int { return x * 2; }
    func main() -> int {
        var s: int = 0;
        for i in 0 .. 10 { s = s + leaf(i); }
        return s;
    }
    """
    _, result, _ = run_both(src)
    assert result.function_cycles("leaf") > 0
    assert result.function_cycles("main") > result.function_cycles("leaf") / 10


def test_taken_branches_counted():
    _, result, _ = run_both(
        "func main(n: int) -> int { var s: int = 0;"
        " for i in 0 .. n { s = s + 1; } return s; }", 10)
    assert result.taken_branches >= 10


# ---------------------------------------------------------------------------
# Faults
# ---------------------------------------------------------------------------

def test_division_by_zero_faults():
    program = compile_source("func main(x: int) -> int { return 1 / x; }")
    sim = Simulator(link_program(program), cmos6_library())
    with pytest.raises(SimError):
        sim.run(0)


def test_fuel_exhaustion():
    program = compile_source("func main() -> int { while 1 { } return 0; }")
    sim = Simulator(link_program(program), cmos6_library(),
                    max_instructions=500)
    with pytest.raises(SimError):
        sim.run()


def test_out_of_bounds_store_faults():
    program = compile_source(
        "global g: int[4];"
        "func main(i: int) -> int { g[i] = 1; return 0; }")
    sim = Simulator(link_program(program), cmos6_library())
    with pytest.raises(SimError):
        sim.run(10_000_000)


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------

def test_global_layout_disjoint_and_above_base():
    program = compile_source(
        "global a: int[10]; global b: int[20];"
        "func main() -> int { return a[0] + b[0]; }")
    layout = layout_globals(program)
    assert all(addr >= GLOBALS_BASE for addr in layout.values())
    spans = sorted((addr, addr + program.global_arrays[s] * 4)
                   for s, addr in layout.items())
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_attribution_covers_every_instruction():
    program = compile_source("func main() -> int { return 1; }")
    image = link_program(program)
    assert len(image.attribution) == len(image.instructions)


def test_branch_targets_resolved_to_ints():
    program = compile_source(
        "func main(n: int) -> int { var s: int = 0;"
        " for i in 0 .. n { s = s + 1; } return s; }")
    image = link_program(program)
    for instr in image.instructions:
        if instr.opcode in (Opcode.BEZ, Opcode.BNZ, Opcode.JMP, Opcode.CALL):
            assert isinstance(instr.target, int)
            assert 0 <= instr.target < len(image.instructions)


def test_function_of():
    program = compile_source(
        "func helper() -> int { return 1; }"
        "func main() -> int { return helper(); }")
    image = link_program(program)
    start, end = image.function_ranges["helper"]
    assert image.function_of(start) == "helper"
    assert image.function_of(end - 1) == "helper"


def test_disassembly_smoke():
    program = compile_source("func main() -> int { return 7; }")
    image = link_program(program)
    text = image.disassemble("main")
    assert "main" in text and "ret" in text

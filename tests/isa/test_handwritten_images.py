"""Simulator tests on hand-assembled images.

The code generator only emits a subset of SL32 (e.g. it never produces
BEZ or NOP); these tests exercise the remaining simulator paths with
hand-built program images.
"""

import pytest

from repro.isa.image import ProgramImage, STACK_TOP
from repro.isa.instructions import Instruction, Opcode
from repro.isa.simulator import SimError, Simulator
from repro.tech import cmos6_library


def make_image(instructions, name="hand"):
    attribution = [(name, "body")] * len(instructions)
    return ProgramImage(
        name=name,
        instructions=instructions,
        entry_pc=0,
        function_ranges={name: (0, len(instructions))},
        symbol_addresses={},
        attribution=attribution,
        frame_sizes={},
    )


def run(instructions, **kwargs):
    sim = Simulator(make_image(instructions), cmos6_library(), **kwargs)
    return sim.run()


def test_bez_taken_and_not_taken():
    # r2 = 0 -> bez taken, skip the poison; r1 = 7.
    code = [
        Instruction(Opcode.LI, rd=2, imm=0),
        Instruction(Opcode.BEZ, rs1=2, target=3),
        Instruction(Opcode.LI, rd=1, imm=999),   # skipped
        Instruction(Opcode.LI, rd=1, imm=7),
        Instruction(Opcode.HALT),
    ]
    result = run(code)
    assert result.result == 7
    assert result.taken_branches == 1

    # r2 = 5 -> bez not taken; poison executes, then overwritten path halts.
    code[0] = Instruction(Opcode.LI, rd=2, imm=5)
    result = run(code)
    assert result.result == 7  # falls through 999 then 7
    assert result.taken_branches == 0


def test_nop_advances():
    code = [
        Instruction(Opcode.NOP),
        Instruction(Opcode.LI, rd=1, imm=3),
        Instruction(Opcode.HALT),
    ]
    assert run(code).result == 3


def test_zero_register_immutable():
    code = [
        Instruction(Opcode.LI, rd=0, imm=1234),   # write to r0 ignored
        Instruction(Opcode.MOV, rd=1, rs1=0),
        Instruction(Opcode.HALT),
    ]
    assert run(code).result == 0


def test_sll_srl_register_forms():
    code = [
        Instruction(Opcode.LI, rd=2, imm=3),
        Instruction(Opcode.LI, rd=3, imm=4),
        Instruction(Opcode.SLL, rd=4, rs1=2, rs2=3),   # 3 << 4 = 48
        Instruction(Opcode.LI, rd=5, imm=-16),
        Instruction(Opcode.SRL, rd=6, rs1=5, rs2=3),   # logical shift
        Instruction(Opcode.ADD, rd=1, rs1=4, rs2=6),
        Instruction(Opcode.HALT),
    ]
    expected = 48 + ((-16) & 0xFFFFFFFF) >> 4
    assert run(code).result == 48 + (((-16) & 0xFFFFFFFF) >> 4)


def test_rem_signs():
    code = [
        Instruction(Opcode.LI, rd=2, imm=-17),
        Instruction(Opcode.LI, rd=3, imm=5),
        Instruction(Opcode.REM, rd=1, rs1=2, rs2=3),
        Instruction(Opcode.HALT),
    ]
    assert run(code).result == -2


def test_rem_by_zero_faults():
    code = [
        Instruction(Opcode.LI, rd=2, imm=1),
        Instruction(Opcode.LI, rd=3, imm=0),
        Instruction(Opcode.REM, rd=1, rs1=2, rs2=3),
        Instruction(Opcode.HALT),
    ]
    with pytest.raises(SimError):
        run(code)


def test_memory_roundtrip_via_sp():
    # Store through sp-relative addressing, load back.
    code = [
        Instruction(Opcode.LI, rd=2, imm=4242),
        Instruction(Opcode.SW, rs1=29, rs2=2, imm=-8),
        Instruction(Opcode.LW, rd=1, rs1=29, imm=-8),
        Instruction(Opcode.HALT),
    ]
    assert run(code).result == 4242
    # sp starts at the stack top
    assert STACK_TOP > 0


def test_pc_out_of_range_faults():
    code = [Instruction(Opcode.JMP, target=99)]
    with pytest.raises(SimError):
        run(code)


def test_load_fault_on_bad_address():
    code = [
        Instruction(Opcode.LI, rd=2, imm=-4),
        Instruction(Opcode.LW, rd=1, rs1=2, imm=0),
        Instruction(Opcode.HALT),
    ]
    with pytest.raises(SimError):
        run(code)


def test_call_ret_roundtrip():
    code = [
        Instruction(Opcode.CALL, target=3),
        Instruction(Opcode.MOV, rd=1, rs1=2),
        Instruction(Opcode.HALT),
        Instruction(Opcode.LI, rd=2, imm=55),  # callee
        Instruction(Opcode.RET),
    ]
    assert run(code).result == 55


def test_energy_class_overhead_counted():
    # alu -> mul -> alu transitions incur circuit-state overhead twice.
    code = [
        Instruction(Opcode.LI, rd=2, imm=3),
        Instruction(Opcode.MUL, rd=3, rs1=2, rs2=2),
        Instruction(Opcode.ADD, rd=1, rs1=3, rs2=2),
        Instruction(Opcode.HALT),
    ]
    with_mul = run(code)
    code_no_mul = [
        Instruction(Opcode.LI, rd=2, imm=3),
        Instruction(Opcode.LI, rd=3, imm=9),
        Instruction(Opcode.ADD, rd=1, rs1=3, rs2=2),
        Instruction(Opcode.HALT),
    ]
    without_mul = run(code_no_mul)
    assert with_mul.result == without_mul.result == 12
    assert with_mul.energy_nj > without_mul.energy_nj
    assert with_mul.cycles > without_mul.cycles  # 3-cycle multiply

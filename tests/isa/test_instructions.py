"""SL32 instruction-definition tests."""

import pytest

from repro.isa.instructions import (
    ALLOC_FIRST,
    ALLOC_LAST,
    ARG_REGS,
    INSTRUCTION_INFO,
    Instruction,
    Opcode,
    RA_REG,
    RETVAL_REG,
    SCRATCH0,
    SCRATCH1,
    SCRATCH2,
    SP_REG,
    TAKEN_BRANCH_PENALTY,
    UPResource,
    ZERO_REG,
)


def test_every_opcode_has_info():
    for opcode in Opcode:
        assert opcode in INSTRUCTION_INFO


def test_cycle_counts_positive():
    for info in INSTRUCTION_INFO.values():
        assert info.cycles >= 1


def test_multiplier_and_divider_multicycle():
    assert INSTRUCTION_INFO[Opcode.MUL].cycles > 1
    assert INSTRUCTION_INFO[Opcode.DIV].cycles > INSTRUCTION_INFO[Opcode.MUL].cycles


def test_resource_activation_alu():
    info = INSTRUCTION_INFO[Opcode.ADD]
    assert UPResource.ALU in info.resources
    assert UPResource.MULTIPLIER not in info.resources


def test_resource_activation_mul_excludes_alu():
    # The paper's premise: during a multiply the ALU is not actively used.
    info = INSTRUCTION_INFO[Opcode.MUL]
    assert UPResource.MULTIPLIER in info.resources
    assert UPResource.ALU not in info.resources


def test_memory_ops_use_lsu_and_alu():
    for opcode in (Opcode.LW, Opcode.SW):
        resources = INSTRUCTION_INFO[opcode].resources
        assert UPResource.LSU in resources
        assert UPResource.ALU in resources  # address generation


def test_every_instruction_fetches():
    for info in INSTRUCTION_INFO.values():
        assert UPResource.IFU in info.resources


def test_energy_classes_known():
    classes = {info.energy_class for info in INSTRUCTION_INFO.values()}
    assert classes <= {"alu", "shift", "mul", "div", "mem", "ctrl", "nop"}


def test_register_conventions_disjoint():
    special = {ZERO_REG, RETVAL_REG, SP_REG, RA_REG,
               SCRATCH0, SCRATCH1, SCRATCH2}
    assert len(special) == 7
    allocatable = set(range(2, 24))
    assert special & allocatable == set()
    assert ALLOC_FIRST == 1 and ALLOC_LAST == 23
    assert RETVAL_REG in ARG_REGS


def test_taken_branch_penalty():
    assert TAKEN_BRANCH_PENALTY == 1


def test_instruction_repr_smoke():
    forms = [
        Instruction(Opcode.LI, rd=3, imm=42),
        Instruction(Opcode.LW, rd=2, rs1=29, imm=8),
        Instruction(Opcode.SW, rs1=29, rs2=4, imm=-4),
        Instruction(Opcode.BNZ, rs1=5, target="loop"),
        Instruction(Opcode.JMP, target=10),
        Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
        Instruction(Opcode.MOV, rd=1, rs1=2),
        Instruction(Opcode.RET),
    ]
    for instr in forms:
        assert instr.opcode.value in repr(instr)

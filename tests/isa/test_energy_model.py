"""Instruction-level (Tiwari-style) energy model tests."""

import pytest

from repro.isa.energy import InstructionEnergyModel


@pytest.fixture()
def model(library):
    return InstructionEnergyModel(library)


def test_alu_base_anchored_to_library(model, library):
    assert model.base_nj("alu") == pytest.approx(library.up_cycle_energy_nj)


def test_class_ordering(model):
    # div > mul > mem > ctrl > alu ~ shift > nop
    assert model.base_nj("div") > model.base_nj("mul") > model.base_nj("mem")
    assert model.base_nj("mem") > model.base_nj("ctrl") > model.base_nj("nop")


def test_multicycle_classes_cheaper_per_cycle(model):
    # mul takes 3 cycles but costs < 3x an alu instruction.
    assert model.base_nj("mul") < 3 * model.base_nj("alu")
    assert model.base_nj("div") < 12 * model.base_nj("alu")


def test_overhead_zero_within_class(model):
    assert model.overhead_nj("alu", "alu") == 0.0


def test_overhead_positive_across_classes(model):
    overhead = model.overhead_nj("alu", "mul")
    assert overhead > 0
    # circuit-state overhead ~10-20% of a base instruction (Tiwari)
    assert overhead < 0.3 * model.base_nj("alu")


def test_overhead_symmetric(model):
    assert model.overhead_nj("alu", "mem") == model.overhead_nj("mem", "alu")


def test_stall_energy_below_active(model):
    assert 0 < model.stall_nj < model.base_nj("alu")


def test_instruction_nj_composition(model):
    total = model.instruction_nj("alu", "mem", stall_cycles=2)
    expected = (model.base_nj("mem") + model.overhead_nj("alu", "mem")
                + 2 * model.stall_nj)
    assert total == pytest.approx(expected)


def test_unknown_class_raises(model):
    with pytest.raises(KeyError):
        model.base_nj("quantum")

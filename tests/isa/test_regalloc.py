"""Linear-scan register-allocator tests."""

from repro.isa.instructions import Instruction, Opcode, SP_REG
from repro.isa.regalloc import (
    ALLOCATABLE,
    Allocation,
    Label,
    LinearScanAllocator,
    VREG_BASE,
)


def vr(index):
    return VREG_BASE + index


def alloc(items):
    return LinearScanAllocator(items).allocate()


def physical_code(allocation):
    return [item for item in allocation.items if isinstance(item, Instruction)]


def test_simple_chain_no_spill():
    items = [
        Instruction(Opcode.LI, rd=vr(0), imm=1),
        Instruction(Opcode.LI, rd=vr(1), imm=2),
        Instruction(Opcode.ADD, rd=vr(2), rs1=vr(0), rs2=vr(1)),
        Instruction(Opcode.MOV, rd=1, rs1=vr(2)),
    ]
    result = alloc(items)
    assert result.spill_slots == 0
    for instr in physical_code(result):
        for field in ("rd", "rs1", "rs2"):
            assert getattr(instr, field) < VREG_BASE


def test_disjoint_lifetimes_share_register():
    items = [
        Instruction(Opcode.LI, rd=vr(0), imm=1),
        Instruction(Opcode.MOV, rd=1, rs1=vr(0)),   # last use of v0
        Instruction(Opcode.LI, rd=vr(1), imm=2),
        Instruction(Opcode.MOV, rd=1, rs1=vr(1)),
    ]
    result = alloc(items)
    assert result.vreg_map[vr(0)] == result.vreg_map[vr(1)]


def test_overlapping_lifetimes_distinct_registers():
    items = [
        Instruction(Opcode.LI, rd=vr(0), imm=1),
        Instruction(Opcode.LI, rd=vr(1), imm=2),
        Instruction(Opcode.ADD, rd=vr(2), rs1=vr(0), rs2=vr(1)),
    ]
    result = alloc(items)
    assert result.vreg_map[vr(0)] != result.vreg_map[vr(1)]


def test_spilling_when_pressure_exceeds_registers():
    count = len(ALLOCATABLE) + 4
    items = [Instruction(Opcode.LI, rd=vr(i), imm=i) for i in range(count)]
    # One instruction using all of them keeps every interval live.
    for i in range(count):
        items.append(Instruction(Opcode.MOV, rd=1, rs1=vr(i)))
    result = alloc(items)
    assert result.spill_slots == 4
    # Spill code references the stack pointer with a patched frame slot.
    spill_instrs = [i for i in physical_code(result)
                    if i.rs1 == SP_REG and i.opcode in (Opcode.LW, Opcode.SW)]
    assert spill_instrs
    assert all(id(i) in result.frame_refs for i in spill_instrs)


def test_spilled_value_reloaded_before_use():
    count = len(ALLOCATABLE) + 1
    items = [Instruction(Opcode.LI, rd=vr(i), imm=i) for i in range(count)]
    for i in range(count):
        items.append(Instruction(Opcode.MOV, rd=1, rs1=vr(i)))
    result = alloc(items)
    code = physical_code(result)
    # every MOV's source register must be written earlier (def before use)
    for idx, instr in enumerate(code):
        if instr.opcode is Opcode.MOV and instr.rd == 1:
            src = instr.rs1
            writers = [j for j in range(idx)
                       if code[j].rd == src and code[j].opcode is not Opcode.SW]
            assert writers, f"source r{src} of MOV at {idx} never written"


def test_loop_extension_keeps_value_alive():
    # v0 defined before the loop, used at the loop head; v1 defined and
    # dead inside the loop must NOT steal v0's register.
    items = [
        Instruction(Opcode.LI, rd=vr(0), imm=1),
        Label("head"),
        Instruction(Opcode.MOV, rd=1, rs1=vr(0)),
        Instruction(Opcode.LI, rd=vr(1), imm=9),
        Instruction(Opcode.MOV, rd=2, rs1=vr(1)),
        Instruction(Opcode.BNZ, rs1=1, target="head"),
    ]
    result = alloc(items)
    assert result.vreg_map[vr(0)] != result.vreg_map[vr(1)]


def test_architectural_registers_untouched():
    items = [
        Instruction(Opcode.ADDI, rd=SP_REG, rs1=SP_REG, imm=-16),
        Instruction(Opcode.LI, rd=vr(0), imm=3),
        Instruction(Opcode.MOV, rd=1, rs1=vr(0)),
    ]
    result = alloc(items)
    code = physical_code(result)
    assert code[0].rd == SP_REG
    assert code[0].rs1 == SP_REG


def test_labels_preserved_in_output():
    items = [
        Label("start"),
        Instruction(Opcode.LI, rd=vr(0), imm=1),
        Label("end"),
    ]
    result = alloc(items)
    labels = [i.name for i in result.items if isinstance(i, Label)]
    assert labels == ["start", "end"]


def test_used_phys_reported():
    items = [
        Instruction(Opcode.LI, rd=vr(0), imm=1),
        Instruction(Opcode.MOV, rd=1, rs1=vr(0)),
    ]
    result = alloc(items)
    assert result.vreg_map[vr(0)] in result.used_phys


def test_empty_stream():
    result = alloc([])
    assert result.items == []
    assert result.spill_slots == 0

"""Bus-transfer estimation (Fig. 3) and pre-selection tests."""

import pytest

from repro.cluster import (
    decompose_into_clusters,
    estimate_transfers,
    preselect_clusters,
)
from repro.lang import Interpreter, compile_source


SRC = """
global inp: int[32];
global mid: int[32];
global outp: int[32];

func main() -> int {
    # cluster 0: region producing scalars
    var k: int = 3;
    # cluster 1: first loop, reads inp, writes mid
    for i in 0 .. 32 { mid[i] = inp[i] * k; }
    # cluster 2: second loop, reads mid, writes outp
    for i in 0 .. 32 { outp[i] = mid[i] + 1; }
    # cluster 3: reduction over outp
    var s: int = 0;
    for i in 0 .. 32 { s = s + outp[i]; }
    return s;
}
"""


@pytest.fixture()
def setting():
    program = compile_source(SRC)
    clusters = decompose_into_clusters(program)
    chain = [c for c in clusters if c.function == "main"]
    interp = Interpreter(program)
    interp.set_global("inp", list(range(32)))
    interp.run()
    return program, clusters, chain, interp.profile


def cluster_named(chain, fragment):
    return next(c for c in chain if fragment in c.name)


def test_first_loop_inputs_from_environment(setting, library):
    program, clusters, chain, _ = setting
    loop1 = cluster_named(chain, "loop@for1")
    est = estimate_transfers(loop1, chain, program, library)
    # inp (32 words) + k flow in; mid (32) flows out.  gen/use sets are the
    # paper's static overapproximation, so a few loop-control scalars
    # (induction variable, bound temp) may also be counted.
    assert 33 <= est.words_in <= 37
    assert 32 <= est.words_out <= 36


def test_second_loop_consumes_first_loops_output(setting, library):
    program, clusters, chain, _ = setting
    loop2 = cluster_named(chain, "loop@for5")
    est = estimate_transfers(loop2, chain, program, library)
    assert 32 <= est.words_in <= 36   # mid (+ loop-control scalars)
    assert 32 <= est.words_out <= 36  # outp (+ loop-control scalars)


def test_synergy_with_hw_predecessor(setting, library):
    program, clusters, chain, _ = setting
    loop1 = cluster_named(chain, "loop@for1")
    loop2 = cluster_named(chain, "loop@for5")
    base = estimate_transfers(loop2, chain, program, library)
    # Fig. 3 step 2: when loop1 is already in hardware, mid never crosses.
    synergy = estimate_transfers(loop2, chain, program, library,
                                 hw_clusters=frozenset({loop1.name}))
    assert synergy.words_in_once < base.words_in_once
    assert synergy.energy_nj < base.energy_nj


def test_synergy_with_hw_successor(setting, library):
    program, clusters, chain, _ = setting
    loop1 = cluster_named(chain, "loop@for1")
    loop2 = cluster_named(chain, "loop@for5")
    base = estimate_transfers(loop1, chain, program, library)
    synergy = estimate_transfers(loop1, chain, program, library,
                                 hw_clusters=frozenset({loop2.name}))
    assert synergy.words_out_once < base.words_out_once


def test_energy_prices_reads_and_writes(setting, library):
    program, clusters, chain, _ = setting
    loop1 = cluster_named(chain, "loop@for1")
    est = estimate_transfers(loop1, chain, program, library)
    expected = (est.words_in_once * library.bus_write_energy_nj
                + est.words_out_once * library.bus_read_energy_nj)
    assert est.energy_nj == pytest.approx(expected)


def test_invocation_scaling(setting, library):
    program, clusters, chain, _ = setting
    loop1 = cluster_named(chain, "loop@for1")
    one = estimate_transfers(loop1, chain, program, library, invocations=1)
    # Loop-invariant inputs transfer once regardless of invocation count.
    five = estimate_transfers(loop1, chain, program, library, invocations=5)
    assert five.total_words_in == one.total_words_in


def test_total_words_property(setting, library):
    program, clusters, chain, _ = setting
    loop1 = cluster_named(chain, "loop@for1")
    est = estimate_transfers(loop1, chain, program, library)
    assert est.total_words == est.total_words_in + est.total_words_out


def test_preselect_keeps_best_clusters(setting, library):
    program, clusters, chain, profile = setting
    kept = preselect_clusters(clusters, program, profile, library, n_max=2)
    assert len(kept) <= 2
    assert all(c.kind == "loop" for c in kept)


def test_preselect_respects_n_max(setting, library):
    program, clusters, chain, profile = setting
    for n_max in (1, 2, 3):
        kept = preselect_clusters(clusters, program, profile, library,
                                  n_max=n_max)
        assert len(kept) <= n_max


def test_preselect_drops_callers(library):
    src = """
    func leaf(x: int) -> int { return x * 2; }
    func main() -> int {
        var s: int = 0;
        for i in 0 .. 50 { s = s + leaf(i); }
        return s;
    }
    """
    program = compile_source(src)
    interp = Interpreter(program)
    interp.run()
    clusters = decompose_into_clusters(program)
    kept = preselect_clusters(clusters, program, interp.profile, library)
    assert all(not c.contains_call for c in kept)


def test_preselect_drops_unexecuted(library):
    src = """
    func main(c: int) -> int {
        var s: int = 0;
        if c { for i in 0 .. 9 { s = s + i; } }
        return s;
    }
    """
    program = compile_source(src)
    interp = Interpreter(program)
    interp.run(0)  # loop never runs
    clusters = decompose_into_clusters(program)
    kept = preselect_clusters(clusters, program, interp.profile, library)
    assert all(c.kind != "loop" for c in kept)


def test_preselect_invalid_n_max(setting, library):
    program, clusters, chain, profile = setting
    with pytest.raises(ValueError):
        preselect_clusters(clusters, program, profile, library, n_max=0)


def test_inner_loop_per_invocation_transfers(library):
    src = """
    global frame: int[16];
    func main() -> int {
        var acc: int = 0;
        for f in 0 .. 4 {
            var bias: int = f * 100;
            for i in 0 .. 16 { frame[i] = frame[i] + bias; }
            acc = acc + frame[f];
        }
        return acc;
    }
    """
    program = compile_source(src)
    clusters = decompose_into_clusters(program)
    chain = [c for c in clusters if c.function == "main"]
    inner = next(c for c in chain if c.depth == 1)
    est = estimate_transfers(inner, chain, program, library, invocations=4)
    # `bias` is regenerated by the enclosing loop every iteration.
    assert est.words_in_per_inv >= 1
    # frame flows back to the software side after every invocation.
    assert est.words_out_per_inv >= 16

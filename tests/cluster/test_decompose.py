"""Cluster decomposition tests (paper Fig. 1 step 2)."""

import pytest

from repro.cluster import decompose_into_clusters
from repro.ir.ops import OpKind
from repro.lang import Interpreter, compile_source


SRC = """
global data: int[64];

func helper(a: int[64], n: int) -> int {
    var s: int = 0;
    for i in 0 .. n { s = s + a[i]; }
    return s;
}

func main() -> int {
    var pre: int = 3;
    for i in 0 .. 64 { data[i] = i * pre; }
    var mid: int = helper(data, 64);
    for i in 0 .. 32 {
        for j in 0 .. 2 { mid = mid + data[i * 2 + j]; }
    }
    return mid;
}
"""


@pytest.fixture()
def program():
    return compile_source(SRC)


@pytest.fixture()
def clusters(program):
    return decompose_into_clusters(program)


def by_name(clusters, fragment):
    matches = [c for c in clusters if fragment in c.name]
    assert matches, f"no cluster matching {fragment!r}"
    return matches[0]


def test_outer_loops_become_clusters(clusters):
    loop_clusters = [c for c in clusters if c.kind == "loop"
                     and c.function == "main"]
    # first loop, nested outer loop, nested inner loop
    assert len(loop_clusters) == 3


def test_inner_loop_has_depth(clusters):
    main_loops = [c for c in clusters if c.kind == "loop"
                  and c.function == "main"]
    depths = sorted(c.depth for c in main_loops)
    assert depths == [0, 0, 1]


def test_inner_loop_shares_outer_slot(clusters):
    main_loops = [c for c in clusters if c.kind == "loop"
                  and c.function == "main"]
    inner = next(c for c in main_loops if c.depth == 1)
    outer = next(c for c in main_loops if c.depth == 0
                 and inner.blocks < c.blocks)
    assert inner.order_index == outer.order_index


def test_regions_between_loops(clusters):
    regions = [c for c in clusters if c.kind == "region"
               and c.function == "main"]
    assert regions
    # The region containing the call is flagged.
    call_regions = [c for c in regions if c.contains_call]
    assert len(call_regions) == 1


def test_call_free_function_becomes_cluster(clusters):
    func_cluster = by_name(clusters, "helper/function")
    assert func_cluster.kind == "function"
    assert not func_cluster.contains_call


def test_entry_function_not_a_function_cluster(clusters):
    assert not any(c.kind == "function" and c.function == "main"
                   for c in clusters)


def test_order_indexes_strictly_increase_along_chain(clusters):
    main_chain = sorted((c for c in clusters if c.function == "main"
                         and c.depth == 0),
                        key=lambda c: c.order_index)
    indexes = [c.order_index for c in main_chain]
    assert indexes == sorted(set(indexes))


def test_gen_use_sets(clusters):
    first_loop = by_name(clusters, "main/loop@for")
    assert "data" in first_loop.gen
    assert "pre" in first_loop.use


def test_fsm_ops_detected_for_counted_loops(program, clusters):
    loop = by_name(clusters, "main/loop@for")
    # compare + increment + its constant
    assert len(loop.fsm_ops) == 3
    cdfg = program.cdfgs["main"]
    kinds = {op.kind for op in cdfg.all_ops() if op.op_id in loop.fsm_ops}
    assert OpKind.LT in kinds and OpKind.ADD in kinds


def test_schedulable_ops_exclude_fsm(program, clusters):
    loop = by_name(clusters, "main/loop@for")
    cdfg = program.cdfgs["main"]
    for ops in loop.schedulable_ops(cdfg).values():
        assert all(op.op_id not in loop.fsm_ops for op in ops)


def test_invocations_from_profile(program, clusters):
    interp = Interpreter(program)
    interp.run()
    cdfg = program.cdfgs["main"]
    counts = {name: interp.profile.block_count("main", name)
              for name in cdfg.blocks}
    outer_loops = [c for c in clusters if c.function == "main"
                   and c.kind == "loop" and c.depth == 0]
    for cluster in outer_loops:
        assert cluster.invocations(counts, cdfg) == 1
    inner = next(c for c in clusters if c.function == "main" and c.depth == 1)
    assert inner.invocations(counts, cdfg) == 32


def test_function_cluster_invocations(program, clusters):
    interp = Interpreter(program)
    interp.run()
    assert interp.profile.call_counts["helper"] == 1


def test_single_function_decomposition(program):
    only_main = decompose_into_clusters(program, function="main")
    assert all(c.function == "main" for c in only_main)
    assert not any(c.kind == "function" for c in only_main)


def test_while_loop_fsm_detection():
    src = """
    func f(n: int) -> int {
        var i: int = 0;
        var s: int = 0;
        while i < n {
            s = s + i;
            i = i + 1;
        }
        return s;
    }
    """
    program = compile_source(src, entry="f")
    clusters = decompose_into_clusters(program, function="f")
    loop = next(c for c in clusters if c.kind == "loop")
    # A while-loop whose body ends in a pure `i = i + 1` matches the
    # counter pattern only when the increment sits alone in the latch
    # block; here it shares the body block, so no FSM ops are claimed.
    cdfg = program.cdfgs["f"]
    for op_id in loop.fsm_ops:
        op = next(op for op in cdfg.all_ops() if op.op_id == op_id)
        assert op.kind in (OpKind.ADD, OpKind.SUB, OpKind.CONST, OpKind.LT)


def test_while_loop_with_break_invocations():
    src = """
    func f(n: int) -> int {
        var i: int = 0;
        var s: int = 0;
        while 1 {
            s = s + i;
            i = i + 1;
            if i >= n { break; }
        }
        return s;
    }
    func main(n: int) -> int {
        var total: int = 0;
        for r in 0 .. 3 { total = total + f(n); }
        return total;
    }
    """
    program = compile_source(src)
    interp = Interpreter(program)
    interp.run(5)
    clusters = decompose_into_clusters(program)
    loop = next(c for c in clusters if c.function == "f" and c.kind == "loop")
    cdfg = program.cdfgs["f"]
    counts = {name: interp.profile.block_count("f", name)
              for name in cdfg.blocks}
    # Called 3 times; the while-loop is entered once per call.
    assert loop.invocations(counts, cdfg) == 3


def test_if_else_region_is_one_cluster():
    src = """
    func main(x: int) -> int {
        var r: int = 0;
        if x > 5 { r = x * 2; } else { r = x * 3; }
        if r > 10 { r = r - 1; }
        return r;
    }
    """
    program = compile_source(src)
    clusters = decompose_into_clusters(program, function="main")
    # No loops: the whole function is one straight region cluster
    # (if-then-else constructs live inside regions).
    regions = [c for c in clusters if c.kind == "region"]
    assert len(regions) == 1
    assert regions[0].blocks == frozenset(program.cdfgs["main"].blocks)


def test_decrementing_while_loop_no_false_fsm_claim():
    src = """
    func f(n: int) -> int {
        var s: int = 0;
        while n > 0 {
            s = s + n;
            n = n - 1;
        }
        return s;
    }
    """
    program = compile_source(src, entry="f")
    clusters = decompose_into_clusters(program, function="f")
    loop = next(c for c in clusters if c.kind == "loop")
    cdfg = program.cdfgs["f"]
    # Whatever was claimed as FSM ops must actually be counter-pattern ops.
    for op_id in loop.fsm_ops:
        op = next(op for op in cdfg.all_ops() if op.op_id == op_id)
        assert op.kind in (OpKind.ADD, OpKind.SUB, OpKind.CONST,
                           OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE)

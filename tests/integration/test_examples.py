"""Smoke tests: every example script must run to completion.

The heavyweight ones (reproduce_table1, multicore over all apps) are
exercised by the integration/benchmark suites; here each example's module
loads and its lighter entry points run.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

# Each example runs real flows end to end: slow tier (docs/TESTING.md).
pytestmark = pytest.mark.slow


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {"quickstart", "reproduce_table1", "design_space_exploration",
            "inspect_synthesis", "multicore_partitioning",
            "control_dominated"} <= names


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "Chosen cluster" in out
    assert "Energy savings" in out


def test_inspect_synthesis_runs(capsys):
    load("inspect_synthesis").main()
    out = capsys.readouterr().out
    assert "hot cluster" in out
    assert "synthesized core" in out
    assert "gate-level energy" in out


def test_design_space_exploration_runs(capsys):
    load("design_space_exploration").main()
    out = capsys.readouterr().out
    assert "candidate landscape" in out
    assert "hardware-budget sweep" in out


def test_control_dominated_runs(capsys):
    load("control_dominated").main()
    out = capsys.readouterr().out
    assert "protocol parser" in out


def test_multicore_pipeline_part_runs(capsys):
    load("multicore_partitioning").run_pipeline()
    out = capsys.readouterr().out
    assert "two-kernel pipeline" in out
    assert "multi core" in out

"""The paper's stated limit: a control-dominated system yields only
marginal savings (conclusion: "further work will concentrate on ...
control-dominated systems")."""

import importlib.util
import pathlib

import pytest

from repro.core import LowPowerFlow


def _load_example():
    path = (pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "control_dominated.py")
    spec = importlib.util.spec_from_file_location("control_dominated", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def result():
    module = _load_example()
    return LowPowerFlow().run(module.make_app())


def test_dispatch_loop_is_unmappable(result):
    dispatch = [c for c in result.decision.all_clusters
                if c.function == "main" and c.kind == "loop"]
    assert dispatch
    assert all(c.contains_call for c in dispatch)


def test_savings_are_marginal(result):
    # Either no partition, or clearly below the data-dominated suite's
    # 29-92% band.
    if result.best is None:
        return
    assert result.energy_savings_percent < 25.0
    assert result.functional_match


def test_parser_functionally_correct(result):
    # Frames were actually found (non-degenerate workload).
    assert result.initial.result >= 1000

"""Integration tests: the paper's headline shapes on the six applications.

These run the complete flow end-to-end and check the *qualitative* claims
of the evaluation section (section 4), not absolute numbers:

* every application partitions with energy savings in the paper's band;
* the partitioned system always computes the same result;
* all applications except ``trick`` get faster; ``trick`` gets slower;
* ``digs`` is the best case; ``engine`` the weakest;
* hardware effort stays in the tens-of-k-cells regime.
"""

import pytest

from repro.apps import app_by_name, ALL_APPS
from repro.core import LowPowerFlow

# Full flows over all six apps: slow tier (docs/TESTING.md).
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def results():
    flow = LowPowerFlow()
    return {name: flow.run(app_by_name(name)) for name in ALL_APPS}


def test_all_apps_partition_and_accept(results):
    for name, res in results.items():
        assert res.best is not None, f"{name} found no partition"
        assert res.accepted, f"{name} partition not energy-positive"


def test_functional_equivalence_everywhere(results):
    for name, res in results.items():
        assert res.functional_match, f"{name} result mismatch"


def test_savings_in_paper_band(results):
    for name, res in results.items():
        assert 15.0 <= res.energy_savings_percent <= 97.0, (
            f"{name}: {res.energy_savings_percent:.1f}% outside band")


def test_all_faster_except_trick(results):
    for name, res in results.items():
        if name == "trick":
            assert res.time_change_percent > 0, \
                "trick must trade time for energy (the paper's key negative)"
        else:
            assert res.time_change_percent < 0, f"{name} must speed up"


def test_digs_is_best_case(results):
    digs = results["digs"].energy_savings_percent
    assert digs == max(r.energy_savings_percent for r in results.values())
    assert digs > 85.0


def test_engine_is_weakest_case(results):
    engine = results["engine"].energy_savings_percent
    assert engine == min(r.energy_savings_percent for r in results.values())


def test_asic_utilization_beats_up(results):
    for name, res in results.items():
        assert res.best.utilization > res.decision.up_utilization, name


def test_hardware_effort_small(results):
    for name, res in results.items():
        assert res.asic_cells < 30_000, f"{name}: {res.asic_cells} cells"
    # The largest cores stay in the ~10-20k band the paper reports.
    assert max(r.asic_cells for r in results.values()) < 25_000


def test_ckey_has_zero_memory_system_energy(results):
    energy = results["ckey"].partitioned.energy
    assert energy.icache_nj == 0.0
    assert energy.dcache_nj == 0.0
    assert energy.mem_nj == 0.0


def test_icache_energy_collapses_when_kernel_moves(results):
    # digs/trick: nearly all instruction fetches move to the ASIC.
    for name in ("digs", "trick"):
        res = results[name]
        ratio = (res.partitioned.energy.icache_nj
                 / res.initial.energy.icache_nj)
        assert ratio < 0.05, f"{name} i-cache only dropped to {ratio:.3f}"


def test_trick_asic_slower_than_up_core_was(results):
    res = results["trick"]
    # The cluster's shared-memory latency makes the ASIC need more cycles
    # than the whole initial software run.
    assert res.partitioned.asic_cycles > 0.8 * res.initial.up_cycles


def test_gate_level_checks_resource_estimate(results):
    """Fig. 1 line 15: the gate-level energy lands within a small factor of
    the line-11 utilization-based estimate for every chosen core."""
    for name, res in results.items():
        gate = res.gate_energy.total_nj
        estimate = res.best.metrics.energy_detailed_nj
        assert 0.2 <= gate / estimate <= 5.0, (
            f"{name}: gate {gate:.0f} vs estimate {estimate:.0f}")


def test_report_renders_for_all_apps(results):
    from repro import format_savings, format_table1
    rows = [(name, res.initial, res.partitioned)
            for name, res in results.items()]
    table = format_table1(rows)
    assert table.count("|I |") == 6
    assert table.count("|P |") == 6
    chart = format_savings(rows)
    assert len(chart.splitlines()) == 7

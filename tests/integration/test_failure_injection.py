"""Failure injection: every layer must fail loudly on corrupted inputs,
never silently produce wrong numbers."""

import pytest

from repro.ir.cdfg import CDFG, IRError
from repro.ir.ops import Operation, OpKind, Value
from repro.isa.image import LinkError, ProgramImage, link_program
from repro.isa.instructions import Instruction, Opcode
from repro.isa.simulator import SimError, Simulator
from repro.lang import InterpError, Interpreter, compile_source
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError
from repro.lang.semantics import SemanticError
from repro.sched.list_scheduler import ScheduleError, list_schedule
from repro.tech import ResourceKind, ResourceSet, cmos6_library


# ---------------------------------------------------------------------------
# Frontend corruption
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("source,error", [
    ("func f() -> int { return $; }", LexError),
    ("func f( -> int { return 0; }", ParseError),
    ("func f() -> int { return x; }", SemanticError),
    ("func f() -> int { return g(); }", SemanticError),
    ("const N = 1/0;", ZeroDivisionError),
])
def test_bad_source_raises(source, error):
    with pytest.raises(error):
        compile_source(source, entry="f" if "func f" in source else "main")


def test_missing_entry_function():
    with pytest.raises(KeyError):
        compile_source("func helper() -> int { return 1; }")


# ---------------------------------------------------------------------------
# Simulator corruption
# ---------------------------------------------------------------------------

def _image(instructions):
    return ProgramImage(name="bad", instructions=instructions, entry_pc=0,
                        function_ranges={"bad": (0, len(instructions))},
                        symbol_addresses={},
                        attribution=[("bad", "b")] * len(instructions),
                        frame_sizes={})


def test_branch_to_negative_pc():
    image = _image([Instruction(Opcode.LI, rd=2, imm=1),
                    Instruction(Opcode.BNZ, rs1=2, target=-5)])
    with pytest.raises(SimError):
        Simulator(image, cmos6_library()).run()


def test_runaway_pc_past_end():
    # No HALT: execution falls off the end of the image.
    image = _image([Instruction(Opcode.NOP)])
    with pytest.raises(SimError):
        Simulator(image, cmos6_library()).run()


def test_store_beyond_memory():
    image = _image([
        Instruction(Opcode.LI, rd=2, imm=0x7FFFFFF0),
        Instruction(Opcode.SW, rs1=2, rs2=2, imm=0),
        Instruction(Opcode.HALT),
    ])
    with pytest.raises(SimError):
        Simulator(image, cmos6_library()).run()


def test_unknown_global_lookup():
    program = compile_source("func main() -> int { return 0; }")
    sim = Simulator(link_program(program), cmos6_library())
    with pytest.raises(KeyError):
        sim.set_global("ghost", [1, 2, 3])


def test_infinite_loop_bounded_by_fuel():
    image = _image([Instruction(Opcode.JMP, target=0)])
    sim = Simulator(image, cmos6_library(), max_instructions=10_000)
    with pytest.raises(SimError) as err:
        sim.run()
    assert "fuel" in str(err.value)


# ---------------------------------------------------------------------------
# IR corruption
# ---------------------------------------------------------------------------

def test_cdfg_with_dangling_branch_rejected():
    cdfg = CDFG("f")
    block = cdfg.add_block("entry")
    block.append(Operation(OpKind.CONST, result=Value("c"), const=1))
    block.append(Operation(OpKind.BRANCH, operands=(Value("c"),)))
    with pytest.raises(IRError):
        cdfg.verify()


def test_interpreter_entry_with_array_params_rejected():
    program = compile_source(
        "func main(a: int[4]) -> int { return a[0]; }")
    with pytest.raises(InterpError):
        Interpreter(program).run()


def test_interpreter_wrong_arity():
    program = compile_source("func main(x: int) -> int { return x; }")
    with pytest.raises(InterpError):
        Interpreter(program).run()           # missing argument
    with pytest.raises(InterpError):
        Interpreter(program).run(1, 2)       # extra argument


# ---------------------------------------------------------------------------
# Scheduler corruption
# ---------------------------------------------------------------------------

def test_empty_resource_set_cannot_schedule():
    empty = ResourceSet("void", {})
    ops = [Operation(OpKind.CONST, result=Value("c"), const=1),
           Operation(OpKind.ADD, result=Value("a"),
                     operands=(Value("c"), Value("c")))]
    with pytest.raises(ScheduleError):
        list_schedule(ops, empty)


def test_link_error_on_overflowing_globals():
    source = "global huge: int[300000];\nfunc main() -> int { return 0; }"
    program = compile_source(source)
    with pytest.raises(LinkError):
        link_program(program)

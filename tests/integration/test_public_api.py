"""Public API surface tests: what README documents must work."""

import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_sequence():
    """The exact shape of the README quickstart."""
    source = """
    global data: int[128];
    func main() -> int {
        for i in 0 .. 128 { data[i] = (data[i] * 3 + 7) & 255; }
        var s: int = 0;
        for k in 0 .. 8 { s = s + data[k * 16]; }
        return s;
    }
    """
    app = repro.AppSpec(name="quick", source=source,
                        globals_init={"data": list(range(128))})
    result = repro.LowPowerFlow().run(app)
    assert result.functional_match
    assert isinstance(result.energy_savings_percent, float)


def test_compile_and_interpret_directly():
    program = repro.compile_source(
        "func main(x: int) -> int { return x * x; }")
    interp = repro.Interpreter(program)
    assert interp.run(12) == 144


def test_custom_resource_sets_and_objective():
    config = repro.PartitionConfig(
        resource_sets=[repro.ResourceSet(
            "custom", {repro.ResourceKind.ALU: 1,
                       repro.ResourceKind.MEMPORT: 1})],
        objective=repro.ObjectiveConfig(f_energy=2.0, g_hardware=0.1),
    )
    source = """
    global v: int[128];
    func main() -> int {
        var s: int = 0;
        for i in 0 .. 128 { s = s + ((v[i] + i) & 63); }
        return s;
    }
    """
    app = repro.AppSpec(name="cfg", source=source, config=config,
                        globals_init={"v": [i % 7 for i in range(128)]})
    result = repro.LowPowerFlow().run(app)
    assert result.functional_match
    if result.best is not None:
        assert result.best.resource_set.name == "custom"


def test_library_customization():
    library = repro.cmos6_library()
    assert library.name == "cmos6"
    flow = repro.LowPowerFlow(library=library)
    assert flow.library is library

"""Finding / VerificationReport data model and JSON schema."""

import pytest

from repro.verify import (
    Finding,
    Severity,
    VerificationError,
    VerificationReport,
    assert_verified,
)
from repro.verify.findings import (
    REPORT_SCHEMA_NAME,
    REPORT_SCHEMA_VERSION,
    load_report,
    validate_report,
)


def _finding(check="power.conservation", severity=Severity.ERROR,
             **kwargs):
    defaults = dict(layer="power", message="does not re-derive",
                    paper_ref="Eq. 3/Table 1", subject="run.mem",
                    values={"reported_nj": 1.0, "recomputed_nj": 2.0})
    defaults.update(kwargs)
    return Finding(check=check, severity=severity, **defaults)


def test_finding_format_carries_ref_subject_and_values():
    line = _finding().format()
    assert "ERROR" in line
    assert "power.conservation" in line
    assert "(Eq. 3/Table 1)" in line
    assert "[run.mem]" in line
    assert "reported_nj=1.0" in line


def test_counts_always_has_all_three_severities():
    report = VerificationReport(label="t")
    assert report.counts() == {"info": 0, "warning": 0, "error": 0}
    report.add(_finding(severity=Severity.WARNING))
    report.add(_finding())
    report.add(_finding())
    assert report.counts() == {"info": 0, "warning": 1, "error": 2}
    assert len(report.errors) == 2
    assert len(report.warnings) == 1
    assert report.has_errors


def test_ran_deduplicates_but_preserves_order():
    report = VerificationReport(label="t")
    for check in ("b.two", "a.one", "b.two", "c.three"):
        report.ran(check)
    assert report.checks_run == ["b.two", "a.one", "c.three"]


def test_extend_merges_findings_and_coverage():
    a = VerificationReport(label="a")
    a.ran("x.one")
    a.add(_finding())
    b = VerificationReport(label="b")
    b.ran("x.one")
    b.ran("y.two")
    b.add(_finding(severity=Severity.INFO))
    a.extend(b)
    assert a.checks_run == ["x.one", "y.two"]
    assert a.counts() == {"info": 1, "warning": 0, "error": 1}


def test_report_round_trips_through_json_file(tmp_path):
    report = VerificationReport(label="round-trip")
    report.ran("sched.capacity")
    report.add(_finding(check="sched.capacity", layer="sched",
                        paper_ref="Fig. 1 line 8"))
    path = tmp_path / "report.json"
    report.write(str(path))
    data = load_report(str(path))
    assert data["schema"] == REPORT_SCHEMA_NAME
    assert data["version"] == REPORT_SCHEMA_VERSION
    assert data["label"] == "round-trip"
    assert data["checks_run"] == ["sched.capacity"]
    assert data["counts"]["error"] == 1
    assert data["findings"][0]["check"] == "sched.capacity"
    assert data["findings"][0]["severity"] == "error"
    assert data["findings"][0]["paper_ref"] == "Fig. 1 line 8"


@pytest.mark.parametrize("mutate", [
    lambda d: d.update(schema="not-a-report"),
    lambda d: d.update(version=99),
    lambda d: d.update(label=7),
    lambda d: d.update(checks_run="oops"),
    lambda d: d.update(findings="oops"),
    lambda d: d["findings"].append({"check": "x"}),
    lambda d: d["findings"].append(
        {"check": "x", "layer": "l", "message": "m", "severity": "fatal"}),
])
def test_validate_report_rejects_malformed(mutate):
    report = VerificationReport(label="ok")
    data = report.to_dict()
    mutate(data)
    with pytest.raises(ValueError):
        validate_report(data)


def test_assert_verified_passes_clean_report_through():
    report = VerificationReport(label="clean")
    report.add(_finding(severity=Severity.WARNING))
    assert assert_verified(report) is report


def test_assert_verified_raises_with_summary():
    report = VerificationReport(label="dirty")
    for _ in range(5):
        report.add(_finding())
    with pytest.raises(VerificationError) as exc:
        assert_verified(report)
    msg = str(exc.value)
    assert "5 ERROR finding(s) in 'dirty'" in msg
    assert "power.conservation" in msg
    assert "+2 more" in msg
    assert exc.value.report is report

"""Shared fixtures: completed flow results to audit (and to corrupt)."""

import pytest

from repro.apps import app_by_name
from repro.core import LowPowerFlow


@pytest.fixture(scope="session")
def ckey_result():
    """ckey: cheapest app; runs without a modeled memory system."""
    return LowPowerFlow(collect_traces=True).run(app_by_name("ckey"))


@pytest.fixture(scope="session")
def digs_result():
    """digs: full memory system + collected reference trace."""
    return LowPowerFlow(collect_traces=True).run(app_by_name("digs"))

"""Fault injection: each corrupted artifact must fire the right invariant
with the right paper reference.

Every test takes a genuinely computed artifact (from the session-scoped
flow fixtures), perturbs one value with ``dataclasses.replace``, and
asserts the verifier localizes the damage to the documented check id.
"""

import dataclasses

from repro.sched.list_scheduler import Schedule
from repro.tech import cmos6_library
from repro.verify import Severity, verify_system_run
from repro.verify.checks import (
    CHECKS,
    check_accepted,
    check_cluster_metrics,
    check_energy_conservation,
    check_schedule,
)
from repro.verify.findings import VerificationReport


def _errors(report, check):
    return [f for f in report.findings
            if f.check == check and f.severity is Severity.ERROR]


def _assert_fires(report, check):
    """The corrupted artifact produced an ERROR on ``check``, and the
    finding carries the registry's paper reference."""
    found = _errors(report, check)
    assert found, (f"expected {check} to fire; findings: "
                   f"{[f.format() for f in report.findings]}")
    assert all(f.paper_ref == CHECKS[check].paper_ref for f in found)
    assert all(f.layer == CHECKS[check].layer for f in found)


# ---------------------------------------------------------------------------
# Schedule layer
# ---------------------------------------------------------------------------

def test_precedence_fault_fires_fig1_line8(ckey_result):
    schedules = ckey_result.best.schedules
    block, schedule = next(
        (b, s) for b, s in sorted(schedules.items())
        if s.ddg is not None and any(
            s.ddg.in_degree(e.op) > 0 and e.start > 0 for e in s.entries))
    entries = [dataclasses.replace(e, start=0)
               if (schedule.ddg.in_degree(e.op) > 0 and e.start > 0) else e
               for e in schedule.entries]
    corrupted = Schedule(entries=entries, makespan=schedule.makespan,
                         resource_set=schedule.resource_set,
                         ddg=schedule.ddg)
    report = VerificationReport(label="fault")
    check_schedule(report, block, corrupted)
    _assert_fires(report, "sched.precedence")
    assert CHECKS["sched.precedence"].paper_ref == "Fig. 1 line 8"


def test_capacity_fault_fires_fig1_line8(ckey_result):
    schedules = ckey_result.best.schedules
    block, schedule = next((b, s) for b, s in sorted(schedules.items())
                           if s.entries)
    entry = schedule.entries[0]
    allowed = schedule.resource_set.count(entry.resource)
    # allowed + 1 copies of the same op in the same step over-subscribes
    # the kind no matter what the designer allocated.
    entries = [dataclasses.replace(entry, start=0)] * (allowed + 1)
    corrupted = Schedule(entries=entries, makespan=entry.latency,
                         resource_set=schedule.resource_set, ddg=None)
    report = VerificationReport(label="fault")
    check_schedule(report, block, corrupted)
    _assert_fires(report, "sched.capacity")


def test_clean_schedules_have_no_schedule_errors(ckey_result):
    report = VerificationReport(label="clean")
    for block, schedule in sorted(ckey_result.best.schedules.items()):
        check_schedule(report, block, schedule)
    assert not _errors(report, "sched.precedence")
    assert not _errors(report, "sched.capacity")


# ---------------------------------------------------------------------------
# Utilization / wasted energy (Eq. 4 / Eq. 2)
# ---------------------------------------------------------------------------

def test_utilization_out_of_bounds_fires_eq4(ckey_result):
    metrics = dataclasses.replace(ckey_result.best.metrics,
                                  utilization=1.27)
    report = VerificationReport(label="fault")
    check_cluster_metrics(report, metrics)
    _assert_fires(report, "sched.utilization")
    assert CHECKS["sched.utilization"].paper_ref == "Eq. 4"


def test_negative_idle_time_fires_eq2(ckey_result):
    metrics = ckey_result.best.metrics
    (kind, index), _cycles = next(iter(
        sorted(metrics.instance_active_cycles.items(),
               key=lambda kv: (kv[0][0].value, kv[0][1]))))
    corrupted_cycles = dict(metrics.instance_active_cycles)
    corrupted_cycles[(kind, index)] = metrics.total_cycles + 7
    metrics = dataclasses.replace(
        metrics, instance_active_cycles=corrupted_cycles)
    report = VerificationReport(label="fault")
    check_cluster_metrics(report, metrics)
    _assert_fires(report, "power.wasted")
    assert CHECKS["power.wasted"].paper_ref == "Eq. 2"


# ---------------------------------------------------------------------------
# Energy conservation (Eq. 3 / Table 1)
# ---------------------------------------------------------------------------

def test_asic_energy_mismatch_fires_eq3(digs_result):
    run = digs_result.partitioned
    report = VerificationReport(label="fault")
    check_energy_conservation(
        report, run, cmos6_library(),
        asic_reference_nj=run.energy.asic_core_nj * 1.5 + 1.0)
    _assert_fires(report, "power.conservation")
    assert CHECKS["power.conservation"].paper_ref == "Eq. 3/Table 1"
    assert any(f.subject.endswith(".asic_core")
               for f in _errors(report, "power.conservation"))


def test_corrupted_mem_counter_fires_conservation(digs_result):
    run = digs_result.initial
    stats = dataclasses.replace(run.stats,
                                mem_word_reads=run.stats.mem_word_reads + 40)
    corrupted = dataclasses.replace(run, stats=stats)
    report = VerificationReport(label="fault")
    check_energy_conservation(report, corrupted, cmos6_library())
    _assert_fires(report, "power.conservation")


# ---------------------------------------------------------------------------
# Memory-system accounting
# ---------------------------------------------------------------------------

def test_corrupted_cache_hits_fire_cache_accounting(digs_result):
    run = digs_result.initial
    icache = dataclasses.replace(run.stats.icache,
                                 read_hits=run.stats.icache.read_hits + 2)
    corrupted = dataclasses.replace(
        run, stats=dataclasses.replace(run.stats, icache=icache))
    report = verify_system_run(corrupted)
    _assert_fires(report, "mem.cache_accounting")
    assert CHECKS["mem.cache_accounting"].paper_ref == "footnote 2"


def test_corrupted_bus_counter_fires_traffic(digs_result):
    run = digs_result.initial
    stats = dataclasses.replace(
        run.stats, bus_word_writes=run.stats.bus_word_writes + 3)
    corrupted = dataclasses.replace(run, stats=stats)
    report = verify_system_run(corrupted)
    _assert_fires(report, "mem.traffic")
    # The bus energy was computed from the true counter; the corrupted
    # snapshot must also break conservation.
    _assert_fires(report, "power.conservation")


def test_corrupted_trace_counts_fire_trace_check(digs_result):
    run = digs_result.initial
    fetches, reads, writes = run.stats.trace_counts
    stats = dataclasses.replace(run.stats,
                                trace_counts=(fetches, reads, writes + 1))
    corrupted = dataclasses.replace(run, stats=stats)
    report = verify_system_run(corrupted)
    _assert_fires(report, "mem.trace")
    assert CHECKS["mem.trace"].paper_ref == "Fig. 5 trace tool"


# ---------------------------------------------------------------------------
# Core layer
# ---------------------------------------------------------------------------

def test_flipped_accept_flag_fires_fig1_exit_test(digs_result):
    corrupted = dataclasses.replace(digs_result,
                                    accepted=not digs_result.accepted)
    report = VerificationReport(label="fault")
    check_accepted(report, corrupted)
    _assert_fires(report, "core.accepted")
    assert CHECKS["core.accepted"].paper_ref == "Fig. 1 'reduced?'"

"""The acceptance bar: genuine flows audit clean, end to end."""

import os
import subprocess
import sys

from repro.core import ExplorationEngine, LowPowerFlow
from repro.apps import app_by_name
from repro.obs import Tracer, use_tracer
from repro.verify import verify_flow_result
from repro.verify.findings import load_report


def _assert_clean(report):
    errors = [f.format() for f in report.errors]
    assert not errors, f"ERROR findings on a genuine flow: {errors}"
    assert report.checks_run, "audit ran no checks"


def test_ckey_flow_audits_clean(ckey_result):
    report = verify_flow_result(ckey_result)
    _assert_clean(report)
    # ckey runs without a modeled memory system: the mem.* deep checks
    # must skip, not fail.
    assert "mem.cache_accounting" not in report.checks_run
    assert "sched.precedence" in report.checks_run
    assert "core.functional" in report.checks_run


def test_digs_flow_audits_clean_including_memory_system(digs_result):
    report = verify_flow_result(digs_result)
    _assert_clean(report)
    for check in ("mem.cache_accounting", "mem.traffic", "mem.trace",
                  "power.conservation", "synth.gate_level"):
        assert check in report.checks_run


def test_flow_verify_flag_attaches_report():
    tracer = Tracer("t")
    with use_tracer(tracer):
        result = LowPowerFlow(tracer=tracer, verify=True).run(
            app_by_name("ckey"))
    assert result.verification is not None
    _assert_clean(result.verification)
    assert tracer.counters.get("verify.passes", 0) >= 1
    assert tracer.counters.get("verify.checks_run", 0) >= len(
        result.verification.checks_run)


def test_engine_verify_audits_every_computed_candidate():
    tracer = Tracer("t")
    engine = ExplorationEngine(tracer=tracer, verify=True)
    with use_tracer(tracer):
        engine.explore(app_by_name("ckey"))
    assert engine.verification is not None
    _assert_clean(engine.verification)
    # No candidate was corrupted, so nothing may have been barred from
    # the cache.
    assert tracer.counters.get("verify.cache_rejected", 0) == 0


def test_cli_verify_subcommand_is_clean_and_writes_report(tmp_path):
    out = tmp_path / "report.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "..",
                                     "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "verify", "ckey", "--strict",
         "--json", str(out)],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    data = load_report(str(out))
    assert data["counts"]["error"] == 0
    assert "verify flow ckey" in proc.stdout


def test_strict_mode_exit_code_is_documented_as_2():
    # The CLI contract (README "CLI reference"): 2 means verification
    # failed under --strict.  Guarded here so the docs cannot drift.
    readme_path = os.path.join(os.path.dirname(__file__), "..", "..",
                               "README.md")
    with open(readme_path, "r", encoding="utf-8") as fh:
        readme = fh.read()
    assert "`2` verification" in readme

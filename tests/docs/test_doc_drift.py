"""Doc-drift guards: the numbers and contracts the docs state must match
the live code.

Two documents make quantitative or structural claims that silently rot
when the code moves:

* ``docs/MODELS.md`` prints the datapath resource table and the scalar
  calibration anchors — parsed here and compared against
  ``repro.tech.cmos6_library()``.
* ``docs/VALIDATION.md`` promises one section per implemented invariant —
  compared against the ``repro.verify.checks.CHECKS`` registry.
* ``docs/PERFORMANCE.md`` states the ``repro-bench`` schema version and
  enumerates the standing suite — compared against ``repro.bench``.
* ``docs/OBSERVABILITY.md`` carries the counter registry — every counter
  the exploration runtime emits must have a registry row.
* ``docs/SCENARIOS.md`` documents the scenario catalog and the
  ``repro-frontier`` report schema — compared against
  ``repro.scenarios``.
* ``docs/TECHNOLOGY.md`` embeds the technology-node catalog table and
  names every model parameter — compared against ``repro.tech``.
* ``docs/SERVICE.md`` is the service wire contract — schema name and
  version, request/result/job field sets, job states, routes and the
  ``repro submit`` exit code — compared against ``repro.service``.
"""

import re
from pathlib import Path

import pytest

from repro.tech import ResourceKind, cmos6_library
from repro.verify.checks import CHECKS

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
MODELS = (REPO_ROOT / "docs" / "MODELS.md").read_text(encoding="utf-8")
VALIDATION = (REPO_ROOT / "docs" / "VALIDATION.md").read_text(
    encoding="utf-8")
PERFORMANCE = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text(
    encoding="utf-8")

ROW_RE = re.compile(
    r"^\|\s*(\w+)\s*\|\s*(\d+)\s*\|\s*(\d+(?:\.\d+)?)\s*"
    r"\|\s*(\d+(?:\.\d+)?)\s*\|\s*(\d+(?:\.\d+)?)\s*\|\s*$",
    re.MULTILINE)


def _documented_resource_rows():
    rows = {}
    for name, geq, active, idle, t_cyc in ROW_RE.findall(MODELS):
        if name.lower() == "kind":
            continue
        rows[name.lower()] = (int(geq), float(active), float(idle),
                              float(t_cyc))
    return rows


def test_models_table_lists_every_resource_kind():
    rows = _documented_resource_rows()
    assert set(rows) == {kind.value for kind in ResourceKind}


@pytest.mark.parametrize("kind", list(ResourceKind),
                         ids=lambda k: k.value)
def test_models_table_matches_library_spec(kind):
    rows = _documented_resource_rows()
    spec = cmos6_library().spec(kind)
    geq, active, idle, t_cyc = rows[kind.value]
    assert geq == spec.geq
    assert active == spec.energy_active_pj
    assert idle == spec.energy_idle_pj
    assert t_cyc == spec.t_cyc_ns


def _scalar(pattern):
    m = re.search(pattern, MODELS)
    assert m, f"MODELS.md no longer states: {pattern!r}"
    return tuple(float(g) for g in m.groups())


def test_models_scalar_anchors_match_library():
    library = cmos6_library()
    (gate_pj,) = _scalar(r"E_gate = (\d+(?:\.\d+)?) pJ")
    assert gate_pj == library.gate_switch_energy_pj
    (up_nj,) = _scalar(r"~(\d+(?:\.\d+)?) nJ per average cycle")
    assert up_nj == library.up_cycle_energy_nj
    mem_r, mem_w = _scalar(
        r"(\d+(?:\.\d+)?) / (\d+(?:\.\d+)?) nJ per 32-bit word")
    assert (mem_r, mem_w) == (library.mem_read_energy_nj,
                              library.mem_write_energy_nj)
    bus_r, bus_w = _scalar(
        r"bus transfers (\d+(?:\.\d+)?) / (\d+(?:\.\d+)?) nJ per\s+word")
    assert (bus_r, bus_w) == (library.bus_read_energy_nj,
                              library.bus_write_energy_nj)
    (buffer_words,) = _scalar(r"`asic_local_buffer_words` \((\d+)\)")
    assert int(buffer_words) == library.asic_local_buffer_words
    (latency,) = _scalar(r"`asic_shared_mem_latency` = (\d+)")
    assert int(latency) == library.asic_shared_mem_latency


# ---------------------------------------------------------------------------
# VALIDATION.md <-> CHECKS registry
# ---------------------------------------------------------------------------

SECTION_RE = re.compile(r"^### `([a-z_.]+)`\s*$", re.MULTILINE)


def test_validation_sections_match_registry_exactly():
    documented = SECTION_RE.findall(VALIDATION)
    assert len(documented) == len(set(documented)), "duplicate sections"
    assert set(documented) == set(CHECKS), (
        f"undocumented checks: {sorted(set(CHECKS) - set(documented))}; "
        f"stale sections: {sorted(set(documented) - set(CHECKS))}")


@pytest.mark.parametrize("check", sorted(CHECKS))
def test_validation_section_is_substantive(check):
    sections = SECTION_RE.split(VALIDATION)
    body = sections[sections.index(check) + 1]
    assert "**Claim**" in body, f"{check}: section states no claim"
    assert "**Enforced by**" in body, f"{check}: no enforcing module"
    assert "failing finding" in body, f"{check}: no example failure"


def test_validation_states_the_live_tolerances():
    from repro.verify.checks import (
        GATE_UNIT_REL_TOL,
        REL_TOL,
        WASTED_TOL_NJ,
    )
    for name, value in (("REL_TOL", REL_TOL),
                        ("WASTED_TOL_NJ", WASTED_TOL_NJ),
                        ("GATE_UNIT_REL_TOL", GATE_UNIT_REL_TOL)):
        m = re.search(rf"`{name}` \| ([0-9.e+-]+)", VALIDATION)
        assert m, f"VALIDATION.md tolerance table lost `{name}`"
        assert float(m.group(1)) == value


# ---------------------------------------------------------------------------
# PERFORMANCE.md <-> repro.bench
# ---------------------------------------------------------------------------

#: Rows of the suite table: | `name` | unit | ...
BENCH_ROW_RE = re.compile(r"^\| `([a-zA-Z0-9._]+)` \| (ops/s|s) \|",
                          re.MULTILINE)

PERFORMANCE_HEADINGS = [
    "## The suite",
    "## Running it",
    "## Report schema (`repro-bench` version 1)",
    "## Baselines",
    "## Measured effect of the current optimisations",
]


def test_performance_states_current_schema_version():
    from repro.bench import BENCH_SCHEMA_NAME, BENCH_SCHEMA_VERSION
    m = re.search(r"## Report schema \(`([a-z-]+)` version (\d+)\)",
                  PERFORMANCE)
    assert m, "PERFORMANCE.md lost its schema section heading"
    assert m.group(1) == BENCH_SCHEMA_NAME
    assert int(m.group(2)) == BENCH_SCHEMA_VERSION
    m = re.search(r"schema version, currently `(\d+)`", PERFORMANCE)
    assert m and int(m.group(1)) == BENCH_SCHEMA_VERSION


def test_performance_has_the_contract_sections():
    for heading in PERFORMANCE_HEADINGS:
        assert f"\n{heading}\n" in PERFORMANCE, (
            f"PERFORMANCE.md lost its '{heading}' section")


def test_performance_suite_table_matches_live_suite():
    from repro.bench import iter_specs
    documented = BENCH_ROW_RE.findall(PERFORMANCE)
    assert documented, "PERFORMANCE.md suite table not found"
    live = {(s.name, s.unit) for s in iter_specs()}
    assert set(documented) == live, (
        f"undocumented benchmarks: {sorted(live - set(documented))}; "
        f"stale rows: {sorted(set(documented) - live)}")


def test_performance_states_the_baseline_filename_and_threshold():
    from repro.bench import BASELINE_FILENAME, DEFAULT_THRESHOLD
    assert BASELINE_FILENAME in PERFORMANCE
    assert (REPO_ROOT / BASELINE_FILENAME).is_file(), (
        "committed baseline missing; record it per docs/PERFORMANCE.md")
    m = re.search(r"percent; default (\d+)", PERFORMANCE)
    assert m and int(m.group(1)) == int(DEFAULT_THRESHOLD * 100)


# ---------------------------------------------------------------------------
# OBSERVABILITY.md <-> counters the exploration runtime emits
# ---------------------------------------------------------------------------

OBSERVABILITY = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text(
    encoding="utf-8")

#: tracer.count("name", ...) / self._tracer.count("name") call sites.
COUNT_CALL_RE = re.compile(r"""count\(\s*["']([a-z_.]+)["']""")


#: Modules (relative to src/repro/) whose counters the registry must
#: cover — the exploration runtime, the Pareto/scenario layer and the
#: service tier.
COUNTER_MODULES = ("core/explore.py", "core/checkpoint.py",
                   "core/partitioner.py", "core/pareto.py",
                   "mem/cache_batch.py",
                   "scenarios/runner.py", "tech/model.py",
                   "service/core.py", "service/jobs.py",
                   "service/journal.py", "service/server.py")


def test_observability_registry_covers_exploration_runtime_counters():
    source = "".join(
        (REPO_ROOT / "src" / "repro" / module).read_text(encoding="utf-8")
        for module in COUNTER_MODULES)
    emitted = set(COUNT_CALL_RE.findall(source))
    assert emitted, "no counter emissions found — regex rotted?"
    undocumented = {name for name in emitted
                    if f"`{name}`" not in OBSERVABILITY}
    assert not undocumented, (
        f"counters emitted but missing from the OBSERVABILITY.md "
        f"registry: {sorted(undocumented)}")


# ---------------------------------------------------------------------------
# SCENARIOS.md <-> repro.scenarios
# ---------------------------------------------------------------------------

SCENARIOS_DOC = (REPO_ROOT / "docs" / "SCENARIOS.md").read_text(
    encoding="utf-8")

#: Catalog table rows: | `name` | apps | variants | description |
SCENARIO_ROW_RE = re.compile(
    r"^\| `([a-z0-9-]+)` \| (\d+) \| (\d+) \| (.+?) \|$", re.MULTILINE)


def test_scenarios_catalog_table_matches_registry():
    from repro.scenarios import SCENARIOS
    documented = {name: (int(apps), int(variants), description)
                  for name, apps, variants, description
                  in SCENARIO_ROW_RE.findall(SCENARIOS_DOC)}
    assert documented, "SCENARIOS.md catalog table not found"
    assert set(documented) == set(SCENARIOS), (
        f"undocumented scenarios: "
        f"{sorted(set(SCENARIOS) - set(documented))}; "
        f"stale rows: {sorted(set(documented) - set(SCENARIOS))}")
    for name, scenario in SCENARIOS.items():
        apps, variants, description = documented[name]
        assert apps == len(scenario.apps), f"{name}: app count drifted"
        assert variants == len(scenario.variants()), (
            f"{name}: variant count drifted")
        assert description == scenario.description, (
            f"{name}: description drifted")


def test_scenarios_states_current_frontier_schema_version():
    from repro.scenarios import (
        FRONTIER_SCHEMA_NAME,
        FRONTIER_SCHEMA_VERSION,
    )
    m = re.search(r"## Frontier report schema \(`([a-z-]+)`, version "
                  r"(\d+)\)", SCENARIOS_DOC)
    assert m, "SCENARIOS.md lost its schema section heading"
    assert m.group(1) == FRONTIER_SCHEMA_NAME
    assert int(m.group(2)) == FRONTIER_SCHEMA_VERSION


def test_scenarios_schema_example_lists_every_field():
    from repro.scenarios import POINT_FIELDS, VARIANT_FIELDS
    section = SCENARIOS_DOC.split("## Frontier report schema")[1]
    section = section.split("## Python API")[0]
    for field in POINT_FIELDS + VARIANT_FIELDS:
        assert f'"{field}":' in section, (
            f"SCENARIOS.md schema example lost the {field!r} key")
    # The prose also enumerates the exact key sets.
    for field in POINT_FIELDS + VARIANT_FIELDS:
        assert re.search(rf"(?<![a-z_]){re.escape(field)}(?![a-z_])",
                         section.replace("\n", " ")), field


# ---------------------------------------------------------------------------
# TECHNOLOGY.md <-> repro.tech technology-model registry
# ---------------------------------------------------------------------------

TECHNOLOGY = (REPO_ROOT / "docs" / "TECHNOLOGY.md").read_text(
    encoding="utf-8")


def test_technology_embeds_the_live_catalog_table():
    from repro.tech import format_catalog_table
    table = format_catalog_table()
    assert table in TECHNOLOGY, (
        "docs/TECHNOLOGY.md catalog table drifted from "
        "repro.tech.format_catalog_table() — regenerate and paste")


def test_technology_names_every_model_parameter():
    import dataclasses

    from repro.tech import CacheParameters, CoreProfile, TechnologyModel
    for cls in (TechnologyModel, CoreProfile, CacheParameters):
        for field in dataclasses.fields(cls):
            assert f"`{field.name}`" in TECHNOLOGY, (
                f"docs/TECHNOLOGY.md no longer documents "
                f"{cls.__name__}.{field.name}")


def test_technology_states_the_scaling_anchors():
    from repro.tech.scaling import (
        FREQ_BRIDGE_45NM,
        REFERENCE_FEATURE_NM,
        REFERENCE_VDD_V,
        UP_IDLE_FRACTION,
    )
    for label, value in (("reference feature size", REFERENCE_FEATURE_NM),
                         ("reference Vdd", REFERENCE_VDD_V),
                         ("frequency bridge", FREQ_BRIDGE_45NM),
                         ("idle fraction", UP_IDLE_FRACTION)):
        assert f"{value:g}" in TECHNOLOGY, (
            f"docs/TECHNOLOGY.md lost the {label} anchor ({value:g})")


# ---------------------------------------------------------------------------
# TESTING.md <-> repro.fuzz
# ---------------------------------------------------------------------------

TESTING = (REPO_ROOT / "docs" / "TESTING.md").read_text(encoding="utf-8")

#: Rows of the geometry / known-bug tables: | `name` | ...
BACKTICK_ROW_RE = re.compile(r"^\| `([a-z0-9-]+)` \|", re.MULTILINE)


def test_testing_geometry_table_matches_live_geometries():
    from repro.fuzz.oracle import CACHE_GEOMETRIES
    documented = BACKTICK_ROW_RE.findall(
        TESTING.split("| Geometry | Shape |")[1].split("###")[0])
    assert set(documented) == set(CACHE_GEOMETRIES), (
        f"undocumented geometries: "
        f"{sorted(set(CACHE_GEOMETRIES) - set(documented))}; "
        f"stale rows: {sorted(set(documented) - set(CACHE_GEOMETRIES))}")


def test_testing_bug_table_matches_known_bugs_registry():
    from repro.fuzz import KNOWN_BUGS
    documented = BACKTICK_ROW_RE.findall(
        TESTING.split("| Bug | Where it is wired |")[1].split("###")[0])
    assert set(documented) == set(KNOWN_BUGS), (
        f"undocumented bugs: {sorted(set(KNOWN_BUGS) - set(documented))}; "
        f"stale rows: {sorted(set(documented) - set(KNOWN_BUGS))}")


def test_testing_states_the_corpus_header_and_exit_code():
    from repro.fuzz import EXIT_MISMATCH
    from repro.fuzz.corpus import HEADER
    assert HEADER in TESTING, "TESTING.md lost the corpus header line"
    m = re.search(r"\| (\d+) \| `fuzz` found a differential mismatch",
                  TESTING)
    assert m and int(m.group(1)) == EXIT_MISMATCH


def test_testing_states_the_submit_exit_codes():
    from repro.service import EXIT_REJECTED
    m = re.search(r"\| (\d+) \| `submit` was rejected", TESTING)
    assert m, "TESTING.md exit-code table lost the `submit` 429 row"
    assert int(m.group(1)) == EXIT_REJECTED


def test_testing_slow_marker_contract_matches_pyproject():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert '"slow' in pyproject, (
        "pyproject.toml lost the slow-marker registration TESTING.md "
        "documents")
    assert "not slow" in pyproject, (
        "pyproject.toml addopts no longer deselect slow tests by default")
    assert "-m slow" in TESTING, (
        "TESTING.md no longer explains how to run the slow tier")


# ---------------------------------------------------------------------------
# SERVICE.md <-> repro.service wire contract
# ---------------------------------------------------------------------------

SERVICE = (REPO_ROOT / "docs" / "SERVICE.md").read_text(encoding="utf-8")

#: Rows of the request-field table: | `field` | type | meaning |
SERVICE_FIELD_ROW_RE = re.compile(r"^\| `([a-z_]+)` \|", re.MULTILINE)


def _service_section(start, stop):
    section = SERVICE.split(start)[1]
    return section.split(stop)[0]


def test_service_states_current_schema_name_and_version():
    from repro.service import SERVICE_SCHEMA_NAME, SERVICE_SCHEMA_VERSION
    m = re.search(r"## Wire schema \(`([a-z-]+)` version (\d+)\)", SERVICE)
    assert m, "SERVICE.md lost its wire-schema section heading"
    assert m.group(1) == SERVICE_SCHEMA_NAME
    assert int(m.group(2)) == SERVICE_SCHEMA_VERSION


def test_service_request_table_matches_request_fields():
    from repro.service import REQUEST_FIELDS
    documented = SERVICE_FIELD_ROW_RE.findall(
        _service_section("### Request", "### Job descriptor"))
    assert documented, "SERVICE.md request-field table not found"
    assert set(documented) == set(REQUEST_FIELDS), (
        f"undocumented request fields: "
        f"{sorted(set(REQUEST_FIELDS) - set(documented))}; "
        f"stale rows: {sorted(set(documented) - set(REQUEST_FIELDS))}")


def test_service_job_descriptor_example_lists_every_field():
    from repro.service import JOB_FIELDS
    section = _service_section("### Job descriptor", "### Job lifecycle")
    for field in JOB_FIELDS:
        assert f'"{field}":' in section, (
            f"SERVICE.md job-descriptor example lost the {field!r} key")


def test_service_lifecycle_names_every_job_state():
    from repro.service import JOB_STATES
    section = _service_section("### Job lifecycle", "### Result object")
    for state in JOB_STATES:
        assert f"`{state}`" in section, (
            f"SERVICE.md lifecycle section lost the {state!r} state")


def test_service_result_example_lists_every_field():
    from repro.service import (
        BEST_FIELDS,
        RESULT_FIELDS,
        SYSTEM_RUN_FIELDS,
    )
    section = _service_section("### Result object", "## Admission")
    for field in RESULT_FIELDS:
        assert f'"{field}":' in section, (
            f"SERVICE.md result example lost the {field!r} key")
    for field in BEST_FIELDS + SYSTEM_RUN_FIELDS:
        assert f'"{field}":' in section, (
            f"SERVICE.md result example lost the {field!r} sub-key")


def test_service_endpoint_table_matches_routes():
    from repro.service import ROUTES
    section = _service_section("## Endpoints", "## Wire schema")
    rows = re.findall(r"^\| `([A-Z]+)` \| `([^`]+)` \|", section,
                      re.MULTILINE)
    assert set(rows) == set(ROUTES), (
        f"undocumented routes: {sorted(set(ROUTES) - set(rows))}; "
        f"stale rows: {sorted(set(rows) - set(ROUTES))}")


def test_service_backpressure_section_names_both_reasons():
    # AdmissionError.reason is part of the 429 payload contract.
    section = _service_section("## Admission control", "## Caching")
    assert '"reason": "queue"' in section
    assert '"reason": "client"' in section
    assert "Retry-After" in section


def test_service_documents_the_announce_line_format():
    # tests and the CI smoke job parse this exact stderr prefix
    assert "repro service listening on http://" in SERVICE


def test_service_event_stream_section_names_every_kind():
    from repro.service import EVENT_KINDS
    section = _service_section("## Event streams", "## Durable jobs")
    for kind in EVENT_KINDS:
        assert f"`{kind}`" in section, (
            f"SERVICE.md event-stream section lost the {kind!r} kind")
    assert '"seq":' in section, "the seq-numbered example is gone"


def test_service_durable_jobs_section_states_the_journal_contract():
    from repro.core.checkpoint import JOURNAL_FILENAME
    from repro.service import (
        JOB_JOURNAL_FILENAME,
        JOB_JOURNAL_MAGIC,
        JOB_RECORD_KINDS,
    )
    section = _service_section("## Durable jobs", "## Admission")
    assert JOB_JOURNAL_FILENAME in section
    assert JOURNAL_FILENAME in section
    assert JOB_JOURNAL_MAGIC.decode().strip() in section, (
        "SERVICE.md no longer states the job-journal magic line")
    for kind in JOB_RECORD_KINDS:
        assert f"`{kind}`" in section, (
            f"SERVICE.md durable-jobs section lost the {kind!r} record "
            f"kind")


def test_service_cli_reference_names_the_new_flags():
    for flag in ("--lanes", "--retry-429", "--stream", "--poll"):
        assert flag in SERVICE, (
            f"SERVICE.md CLI reference lost the {flag} flag")

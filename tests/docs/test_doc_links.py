"""Tests for ``tools/check_doc_links.py`` — the CI docs gate.

The checker is stdlib-only and not part of the installed package, so it
is loaded straight from ``tools/``.  ``check_file`` reports paths
relative to the repo root; the fixture points the module's ``REPO_ROOT``
at ``tmp_path`` so synthetic docs can exercise every failure mode.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

spec = importlib.util.spec_from_file_location(
    "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py")
checker = importlib.util.module_from_spec(spec)
spec.loader.exec_module(checker)


def test_repo_docs_have_no_broken_links():
    """The committed doc set itself must stay clean (CI runs this gate)."""
    problems = []
    for path in checker.doc_files():
        problems.extend(checker.check_file(path))
    assert problems == []


@pytest.fixture()
def docroot(tmp_path, monkeypatch):
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    return tmp_path


def _check(docroot, text, name="page.md"):
    path = docroot / name
    path.write_text(text, encoding="utf-8")
    return checker.check_file(path)


def test_broken_inline_link_is_flagged(docroot):
    problems = _check(docroot, "see [other](missing.md).")
    assert len(problems) == 1
    assert "broken link -> missing.md" in problems[0]


def test_inline_link_with_title_resolves(docroot):
    (docroot / "other.md").write_text("# Other\n", encoding="utf-8")
    assert _check(docroot, 'see [other](other.md "the other page").') == []


def test_missing_anchor_is_flagged(docroot):
    (docroot / "other.md").write_text("# Only Heading\n", encoding="utf-8")
    assert _check(docroot, "[ok](other.md#only-heading)") == []
    problems = _check(docroot, "[bad](other.md#nope)")
    assert len(problems) == 1
    assert "missing anchor #nope" in problems[0]


def test_reference_definition_target_is_checked(docroot):
    (docroot / "other.md").write_text("# Other\n", encoding="utf-8")
    assert _check(docroot, "see [other][o].\n\n[o]: other.md\n") == []
    problems = _check(docroot, "see [other][o].\n\n[o]: missing.md\n")
    assert len(problems) == 1
    assert "broken link -> missing.md" in problems[0]


def test_undefined_reference_use_is_flagged(docroot):
    problems = _check(docroot, "see [other][nowhere].")
    assert len(problems) == 1
    assert "undefined link reference [nowhere]" in problems[0]


def test_collapsed_reference_uses_its_text_as_id(docroot):
    (docroot / "other.md").write_text("# Other\n", encoding="utf-8")
    assert _check(docroot, "see [Other][].\n\n[other]: other.md\n") == []
    problems = _check(docroot, "see [Ghost][].")
    assert "undefined link reference [ghost]" in problems[0]


def test_code_fences_and_inline_code_are_ignored(docroot):
    text = ("usage: `[text](not-a-file.md)` inline\n"
            "```\n[example](also-not-a-file.md)\n[ref][undefined]\n```\n")
    assert _check(docroot, text) == []


def test_external_links_are_ignored(docroot):
    assert _check(docroot, "[x](https://example.com/y#z)") == []

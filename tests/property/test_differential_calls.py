"""Differential testing of programs with function calls and globals.

Extends the random-program differential suite with cross-function shapes:
helper calls inside loops, array parameters by reference, and
memory-backed scalar globals.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.image import link_program
from repro.isa.simulator import Simulator
from repro.lang import Interpreter, compile_source
from repro.tech import cmos6_library

from tests.property.test_differential import expressions

_LIBRARY = cmos6_library()


@st.composite
def call_programs(draw):
    """main loops and calls a scalar helper; a second helper mutates a
    global accumulator."""
    helper_expr = draw(expressions(["x", "y"], depth=2))
    body_expr = draw(expressions(["i", "t"], depth=1))
    trips = draw(st.integers(1, 10))
    return f"""
    global acc: int;

    func helper(x: int, y: int) -> int {{
        return {helper_expr};
    }}

    func bump(v: int) -> void {{
        acc = acc + v;
    }}

    func main(a: int, b: int) -> int {{
        var s: int = 0;
        for i in 0 .. {trips} {{
            var t: int = helper(a + i, b - i);
            bump(({body_expr}) & 1023);
            s = s + t;
        }}
        return s + acc;
    }}
    """


@st.composite
def array_ref_programs(draw):
    """Arrays mutated through reference parameters across two helpers."""
    size = draw(st.integers(4, 12))
    fill = draw(expressions(["i", "k"], depth=1))
    fold = draw(expressions(["v", "s"], depth=1))
    return f"""
    func fill(buf: int[{size}], k: int) -> void {{
        for i in 0 .. {size} {{
            buf[i] = ({fill}) & 0xFFFF;
        }}
    }}

    func fold(buf: int[{size}]) -> int {{
        var s: int = 0;
        for i in 0 .. {size} {{
            var v: int = buf[i];
            s = s + ({fold});
        }}
        return s;
    }}

    func main(a: int, b: int) -> int {{
        var work: int[{size}];
        fill(work, a);
        var first: int = fold(work);
        fill(work, b);
        return first ^ fold(work);
    }}
    """


def both(source, a, b):
    program = compile_source(source)
    expected = Interpreter(program).run(a, b)
    sim = Simulator(link_program(program), _LIBRARY)
    return expected, sim.run(a, b).result


@settings(max_examples=40, deadline=None)
@given(call_programs(), st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_calls_and_scalar_globals_agree(source, a, b):
    expected, got = both(source, a, b)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(array_ref_programs(), st.integers(-100, 100), st.integers(-100, 100))
def test_array_reference_parameters_agree(source, a, b):
    expected, got = both(source, a, b)
    assert got == expected


@settings(max_examples=20, deadline=None)
@given(call_programs(), st.integers(-100, 100), st.integers(-100, 100))
def test_optimizer_preserves_call_programs(source, a, b):
    from repro.ir.optimize import optimize_program
    program = compile_source(source)
    expected = Interpreter(program).run(a, b)
    optimized = compile_source(source)
    optimize_program(optimized)
    assert Interpreter(optimized).run(a, b) == expected
    sim = Simulator(link_program(optimized), _LIBRARY)
    assert sim.run(a, b).result == expected

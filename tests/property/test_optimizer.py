"""Property-based semantics preservation of the IR optimizer.

For randomly generated BDL programs: interpreting the optimized CDFGs and
simulating the optimized program on SL32 must both agree with the
unoptimized reference — and the optimizer must never grow the op count.
"""

from hypothesis import given, settings, strategies as st

from repro.ir.optimize import optimize_program
from repro.isa.image import link_program
from repro.isa.simulator import Simulator
from repro.lang import Interpreter, compile_source
from repro.tech import cmos6_library

from tests.property.test_differential import (
    array_programs,
    straightline_programs,
)

_LIBRARY = cmos6_library()


def _reference(source, a, b):
    program = compile_source(source)
    return Interpreter(program).run(a, b)


@settings(max_examples=50, deadline=None)
@given(straightline_programs(), st.integers(-10_000, 10_000),
       st.integers(-10_000, 10_000))
def test_optimized_interpreter_matches(source, a, b):
    expected = _reference(source, a, b)
    optimized = compile_source(source)
    optimize_program(optimized)
    assert Interpreter(optimized).run(a, b) == expected


@settings(max_examples=30, deadline=None)
@given(array_programs(), st.integers(-100, 100), st.integers(-100, 100))
def test_optimized_simulator_matches(source, a, b):
    expected = _reference(source, a, b)
    optimized = compile_source(source)
    optimize_program(optimized)
    sim = Simulator(link_program(optimized), _LIBRARY)
    assert sim.run(a, b).result == expected


@settings(max_examples=40, deadline=None)
@given(straightline_programs())
def test_optimizer_never_grows_code(source):
    plain = compile_source(source)
    optimized = compile_source(source)
    optimize_program(optimized)
    assert optimized.op_count <= plain.op_count


@settings(max_examples=30, deadline=None)
@given(straightline_programs())
def test_optimizer_idempotent_on_random_programs(source):
    from repro.ir.optimize import optimize_cdfg
    program = compile_source(source)
    optimize_program(program)
    for cdfg in program.cdfgs.values():
        assert not optimize_cdfg(cdfg)

"""Property-based invariants for core data structures: caches, wrap32,
gen/use algebra, schedules and binding."""

from hypothesis import given, settings, strategies as st

from repro.ir.dataflow import gen_set, use_set
from repro.ir.ops import Operation, OpKind, Value
from repro.lang.interp import wrap32
from repro.mem.cache import Cache, CacheConfig
from repro.sched.binding import bind_schedule
from repro.sched.list_scheduler import list_schedule
from repro.sched.utilization import cluster_metrics
from repro.tech import cmos6_library
from repro.tech.resources import ResourceKind, ResourceSet

_LIBRARY = cmos6_library()


# ---------------------------------------------------------------------------
# wrap32
# ---------------------------------------------------------------------------

@given(st.integers(-2**40, 2**40))
def test_wrap32_in_range(x):
    w = wrap32(x)
    assert -2**31 <= w < 2**31


@given(st.integers(-2**40, 2**40))
def test_wrap32_idempotent(x):
    assert wrap32(wrap32(x)) == wrap32(x)


@given(st.integers(-2**40, 2**40))
def test_wrap32_period(x):
    assert wrap32(x + 2**32) == wrap32(x)


@given(st.integers(-2**31, 2**31 - 1))
def test_wrap32_identity_in_range(x):
    assert wrap32(x) == x


@given(st.integers(-2**40, 2**40), st.integers(-2**40, 2**40))
def test_wrap32_addition_homomorphic(x, y):
    assert wrap32(wrap32(x) + wrap32(y)) == wrap32(x + y)


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------

_cache_configs = st.sampled_from([
    CacheConfig(size_bytes=256, line_bytes=16, associativity=1),
    CacheConfig(size_bytes=256, line_bytes=16, associativity=2),
    CacheConfig(size_bytes=512, line_bytes=32, associativity=4),
    CacheConfig(size_bytes=128, line_bytes=16, associativity=8),
])

_accesses = st.lists(
    st.tuples(st.integers(0, 4095), st.booleans()), min_size=0, max_size=300)


@settings(max_examples=50, deadline=None)
@given(_cache_configs, _accesses)
def test_cache_counters_consistent(config, accesses):
    cache = Cache(config)
    for address, is_write in accesses:
        cache.access(address, is_write)
    assert cache.reads + cache.writes == len(accesses)
    assert cache.read_misses <= cache.reads
    assert cache.write_misses <= cache.writes
    assert cache.fills == cache.read_misses
    assert 0.0 <= cache.hit_rate <= 1.0


@settings(max_examples=50, deadline=None)
@given(_cache_configs, _accesses, st.integers(0, 4095))
def test_cache_read_after_read_hits(config, accesses, probe):
    """Temporal locality: a read immediately after a read of the same
    address always hits (LRU never evicts the MRU line)."""
    cache = Cache(config)
    for address, is_write in accesses:
        cache.access(address, is_write)
    cache.access(probe)
    assert cache.access(probe) is True


@settings(max_examples=30, deadline=None)
@given(_cache_configs, _accesses)
def test_cache_occupancy_bounded(config, accesses):
    cache = Cache(config)
    for address, is_write in accesses:
        cache.access(address, is_write)
    for tags in cache.set_contents():
        assert len(tags) <= config.associativity
        assert len(set(tags)) == len(tags)  # no duplicate lines in a set


# ---------------------------------------------------------------------------
# gen/use algebra
# ---------------------------------------------------------------------------

def _random_ops(draw_ints):
    """Build a deterministic op list from a list of ints (poor man's
    strategy: each int encodes one op)."""
    ops = []
    names = ["a", "b", "c", "d"]
    for code in draw_ints:
        kind = code % 4
        dst = Value(names[(code // 4) % 4])
        src1 = Value(names[(code // 16) % 4])
        src2 = Value(names[(code // 64) % 4])
        if kind == 0:
            ops.append(Operation(OpKind.ADD, result=dst, operands=(src1, src2)))
        elif kind == 1:
            ops.append(Operation(OpKind.CONST, result=dst, const=code))
        elif kind == 2:
            ops.append(Operation(OpKind.LOAD, result=dst, operands=(src1,),
                                 symbol="mem"))
        else:
            ops.append(Operation(OpKind.STORE, operands=(src1, src2),
                                 symbol="mem"))
    return ops


@given(st.lists(st.integers(0, 255), max_size=30),
       st.lists(st.integers(0, 255), max_size=30))
def test_gen_of_concatenation_is_union(codes_a, codes_b):
    ops_a, ops_b = _random_ops(codes_a), _random_ops(codes_b)
    assert gen_set(ops_a + ops_b) == gen_set(ops_a) | gen_set(ops_b)


@given(st.lists(st.integers(0, 255), max_size=30),
       st.lists(st.integers(0, 255), max_size=30))
def test_use_of_concatenation_bounded(codes_a, codes_b):
    ops_a, ops_b = _random_ops(codes_a), _random_ops(codes_b)
    combined = use_set(ops_a + ops_b)
    assert use_set(ops_a) <= combined
    assert combined <= use_set(ops_a) | use_set(ops_b)


# ---------------------------------------------------------------------------
# Schedule + binding invariants on random op lists
# ---------------------------------------------------------------------------

_resource_sets = st.sampled_from([
    ResourceSet("a1m1", {ResourceKind.ALU: 1, ResourceKind.MEMPORT: 1}),
    ResourceSet("a2m1", {ResourceKind.ALU: 2, ResourceKind.MEMPORT: 1}),
    ResourceSet("rich", {ResourceKind.ALU: 2, ResourceKind.MEMPORT: 2,
                         ResourceKind.COMPARATOR: 1,
                         ResourceKind.SHIFTER: 1}),
])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=40),
       _resource_sets)
def test_schedule_always_valid(codes, resource_set):
    ops = _random_ops(codes)
    schedule = list_schedule(ops, resource_set)
    schedule.verify()
    # Makespan bounds: at least the per-resource work lower bound.
    from repro.sched.list_scheduler import datapath_ops
    from repro.tech.resources import compatible_resources, operation_latency
    body = datapath_ops(ops)
    if body:
        work = sum(operation_latency(op.kind) for op in body)
        assert schedule.makespan >= work / resource_set.total_instances
        assert schedule.makespan <= work  # never worse than fully serial


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=40),
       _resource_sets)
def test_binding_never_double_books(codes, resource_set):
    ops = _random_ops(codes)
    schedules = {"b": list_schedule(ops, resource_set)}
    binding = bind_schedule(schedules, _LIBRARY)
    start = {e.op: (e.start, e.end) for e in schedules["b"].entries}
    per_instance = {}
    for op, key in binding.assignment.items():
        per_instance.setdefault(key, []).append(start[op])
    for intervals in per_instance.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=40),
       _resource_sets, st.integers(1, 100))
def test_utilization_bounded_and_scale_invariant(codes, resource_set, scale):
    ops = _random_ops(codes)
    schedules = {"b": list_schedule(ops, resource_set)}
    binding = bind_schedule(schedules, _LIBRARY)
    m1 = cluster_metrics(binding, {"b": 1}, _LIBRARY)
    ms = cluster_metrics(binding, {"b": scale}, _LIBRARY)
    assert 0.0 <= m1.utilization <= 1.0
    assert abs(m1.utilization - ms.utilization) < 1e-9
    assert ms.total_cycles == scale * m1.total_cycles

"""Structural property tests: decomposition and scheduling invariants on
randomly generated structured programs."""

from hypothesis import given, settings, strategies as st

from repro.cluster import decompose_into_clusters
from repro.lang import Interpreter, compile_source
from repro.sched.list_scheduler import ChainingModel, list_schedule
from repro.tech import cmos6_library
from repro.tech.resources import ResourceKind, ResourceSet

_LIBRARY = cmos6_library()


@st.composite
def structured_programs(draw):
    """Programs with random nesting of loops and conditionals."""
    counter = [0]

    def fresh_name(prefix):
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def body(depth, names):
        statements = []
        for index in range(draw(st.integers(1, 3))):
            choice = draw(st.integers(0, 3 if depth > 0 else 1))
            if choice == 0:
                fresh = fresh_name("v")
                source = draw(st.sampled_from(names))
                statements.append(
                    f"var {fresh}: int = {source} * 3 + {index};")
                names = names + [fresh]
            elif choice == 1:
                cond = draw(st.sampled_from(names))
                inner = body(depth - 1, names) if depth > 0 else "acc = acc + 1;"
                statements.append(f"if {cond} > 2 {{ {inner} }}")
            elif choice == 2:
                trips = draw(st.integers(1, 4))
                loop_var = fresh_name("i")
                inner = body(depth - 1, names + [loop_var])
                statements.append(
                    f"for {loop_var} in 0 .. {trips} {{ {inner} }}")
            else:
                source = draw(st.sampled_from(names))
                statements.append(f"acc = acc + ({source} & 7);")
        return " ".join(statements)

    text = body(draw(st.integers(1, 3)), ["a", "b"])
    return f"""
    func main(a: int, b: int) -> int {{
        var acc: int = 0;
        {text}
        return acc;
    }}
    """


@settings(max_examples=40, deadline=None)
@given(structured_programs())
def test_decomposition_invariants(source):
    program = compile_source(source)
    cdfg = program.cdfgs["main"]
    clusters = decompose_into_clusters(program, function="main")

    # Top-level clusters partition disjoint block sets.
    top = [c for c in clusters if c.depth == 0]
    seen = set()
    for cluster in top:
        assert not (cluster.blocks & seen), "top-level clusters overlap"
        seen |= cluster.blocks
    # Every block belongs to exactly one top-level cluster.
    assert seen == set(cdfg.blocks)

    # Order indexes are dense and deterministic.
    indexes = sorted({c.order_index for c in top})
    assert indexes == list(range(len(indexes)))

    # Inner clusters nest inside a same-slot top-level loop.
    for cluster in clusters:
        if cluster.depth > 0:
            enclosing = [c for c in top
                         if c.order_index == cluster.order_index]
            assert enclosing
            assert cluster.blocks < enclosing[0].blocks

    # FSM ops reference real operations of the cluster.
    for cluster in clusters:
        op_ids = {op.op_id for op in cluster.ops(cdfg)}
        assert set(cluster.fsm_ops) <= op_ids


@settings(max_examples=40, deadline=None)
@given(structured_programs(), st.integers(-5, 10), st.integers(-5, 10))
def test_decomposition_is_nondestructive(source, a, b):
    """Decomposition must not mutate the program: it still runs."""
    program = compile_source(source)
    before = Interpreter(program).run(a, b)
    decompose_into_clusters(program)
    after = Interpreter(program).run(a, b)
    assert before == after


_sets = st.sampled_from([
    ResourceSet("a1", {ResourceKind.ALU: 1, ResourceKind.COMPARATOR: 1,
                       ResourceKind.MULTIPLIER: 1}),
    ResourceSet("a3", {ResourceKind.ALU: 3, ResourceKind.COMPARATOR: 1,
                       ResourceKind.MULTIPLIER: 1}),
])


@settings(max_examples=30, deadline=None)
@given(structured_programs(), _sets, st.floats(10.0, 60.0))
def test_chained_schedule_invariants(source, resource_set, clock_ns):
    """Chained schedules respect capacity and never beat the work bound."""
    from repro.sched.list_scheduler import datapath_ops
    program = compile_source(source)
    for block in program.cdfgs["main"].blocks.values():
        chained = list_schedule(block.ops, resource_set,
                                chaining=ChainingModel(clock_ns=clock_ns))
        chained.verify()  # capacity check
        plain = list_schedule(block.ops, resource_set)
        assert chained.makespan <= plain.makespan
        body = datapath_ops(block.ops)
        if body:
            # Even with chaining, a step holds at most `instances` ops.
            assert chained.makespan >= len(body) / max(
                1, resource_set.total_instances * 4)

"""Property-based differential testing: for randomly generated BDL
programs, the SL32 simulation must agree with the reference interpreter —
compiler, register allocator, linker and simulator all stand or fall
together on this property.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.image import link_program
from repro.isa.simulator import Simulator
from repro.lang import Interpreter, compile_source
from repro.tech import cmos6_library

_LIBRARY = cmos6_library()

_BINOPS = ["+", "-", "*", "&", "|", "^"]
_CMPOPS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def expressions(draw, names, depth=2):
    """A random BDL expression over `names` that cannot fault."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()) and names:
            return draw(st.sampled_from(names))
        return str(draw(st.integers(-1000, 1000)))
    form = draw(st.integers(0, 4))
    left = draw(expressions(names, depth - 1))
    right = draw(expressions(names, depth - 1))
    if form == 0:
        op = draw(st.sampled_from(_BINOPS))
        return f"({left} {op} {right})"
    if form == 1:
        op = draw(st.sampled_from(_CMPOPS))
        return f"({left} {op} {right})"
    if form == 2:
        shift = draw(st.integers(0, 15))
        direction = draw(st.sampled_from(["<<", ">>"]))
        return f"({left} {direction} {shift})"
    if form == 3:
        divisor = draw(st.integers(1, 50))
        op = draw(st.sampled_from(["/", "%"]))
        return f"({left} {op} {divisor})"
    return f"(-({left}))"


@st.composite
def straightline_programs(draw):
    """Declarations + arithmetic + a conditional + a bounded loop."""
    names = ["a", "b"]
    lines = []
    for i in range(draw(st.integers(1, 4))):
        expr = draw(expressions(names))
        lines.append(f"var v{i}: int = {expr};")
        names.append(f"v{i}")
    cond = draw(expressions(names, depth=1))
    then_expr = draw(expressions(names, depth=1))
    else_expr = draw(expressions(names, depth=1))
    lines.append(f"var w: int = 0;")
    lines.append(f"if {cond} {{ w = {then_expr}; }} else {{ w = {else_expr}; }}")
    names.append("w")
    trips = draw(st.integers(0, 12))
    body_expr = draw(expressions(names + ["i"], depth=1))
    lines.append(f"var acc: int = 0;")
    lines.append(f"for i in 0 .. {trips} {{ acc = acc + ({body_expr}); }}")
    ret = draw(expressions(names + ["acc"], depth=1))
    body = "\n        ".join(lines)
    return f"""
    func main(a: int, b: int) -> int {{
        {body}
        return {ret};
    }}
    """


@st.composite
def array_programs(draw):
    """Programs exercising arrays with in-bounds indices."""
    size = draw(st.integers(4, 16))
    fill = draw(expressions(["i"], depth=1))
    combine = draw(expressions(["x", "s"], depth=1))
    return f"""
    func main(a: int, b: int) -> int {{
        var buf: int[{size}];
        for i in 0 .. {size} {{
            buf[i] = {fill};
        }}
        var s: int = 0;
        for i in 0 .. {size} {{
            var x: int = buf[i];
            s = s + ({combine});
        }}
        return s;
    }}
    """


def both_results(source, a, b):
    program = compile_source(source)
    interp = Interpreter(program)
    expected = interp.run(a, b)
    sim = Simulator(link_program(program), _LIBRARY)
    return expected, sim.run(a, b)


@settings(max_examples=60, deadline=None)
@given(straightline_programs(), st.integers(-10_000, 10_000),
       st.integers(-10_000, 10_000))
def test_simulator_matches_interpreter_straightline(source, a, b):
    expected, result = both_results(source, a, b)
    assert result.result == expected


@settings(max_examples=40, deadline=None)
@given(array_programs(), st.integers(-100, 100), st.integers(-100, 100))
def test_simulator_matches_interpreter_arrays(source, a, b):
    expected, result = both_results(source, a, b)
    assert result.result == expected


@settings(max_examples=25, deadline=None)
@given(straightline_programs(), st.integers(-50, 50), st.integers(-50, 50))
def test_block_accounting_invariants(source, a, b):
    """Per-block cycles/energy always sum to the run totals."""
    program = compile_source(source)
    sim = Simulator(link_program(program), _LIBRARY)
    result = sim.run(a, b)
    assert sum(result.block_cycles.values()) == result.cycles
    assert abs(sum(result.block_energy_nj.values()) - result.energy_nj) < 1e-6
    assert 0.0 <= result.utilization <= 1.0

"""Unit tests for the ``repro bench`` harness.

Pins the machine-readable contract documented in ``docs/PERFORMANCE.md``:
the ``repro-bench`` report schema, the median/dispersion statistics of
``run_suite``, and the unit-normalized orientation of ``compare`` (for
both ``ops/s`` and wall-second benchmarks).  The suite itself is pinned
by name so benchmarks cannot silently disappear from the baseline.
"""

import pytest

from repro.bench import (
    BASELINE_FILENAME,
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    BenchContext,
    BenchSpec,
    compare,
    default_report_filename,
    format_report,
    iter_specs,
    load_report,
    run_suite,
    validate_report,
    write_report,
)


def make_report(results=None, **overrides):
    """A minimal schema-valid report, customisable per test."""
    report = {
        "schema": BENCH_SCHEMA_NAME,
        "version": BENCH_SCHEMA_VERSION,
        "created": "2026-08-07T00:00:00Z",
        "repeats": 3,
        "environment": {"python": "3.11.7"},
        "results": results if results is not None else {
            "micro.demo": make_entry(2.0, unit="ops/s",
                                     higher_is_better=True),
        },
    }
    report.update(overrides)
    return report


def make_entry(median, unit="ops/s", higher_is_better=True, **overrides):
    entry = {
        "unit": unit,
        "higher_is_better": higher_is_better,
        "median": median,
        "best": median,
        "worst": median,
        "dispersion": 0.0,
        "runs": [median],
        "meta": {},
    }
    entry.update(overrides)
    return entry


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


class TestValidateReport:
    def test_valid_report_passes(self):
        validate_report(make_report())

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_report([1, 2, 3])

    def test_rejects_wrong_schema_tag(self):
        with pytest.raises(ValueError, match="not a repro-bench file"):
            validate_report(make_report(schema="something-else"))

    def test_rejects_unsupported_version(self):
        bad = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match=f"version {bad}"):
            validate_report(make_report(version=bad))

    def test_rejects_missing_created(self):
        report = make_report()
        del report["created"]
        with pytest.raises(ValueError, match="created"):
            validate_report(report)

    @pytest.mark.parametrize("repeats", [0, -1, 1.5, "3", True])
    def test_rejects_bad_repeats(self, repeats):
        with pytest.raises(ValueError, match="repeats"):
            validate_report(make_report(repeats=repeats))

    def test_rejects_non_dict_environment(self):
        with pytest.raises(ValueError, match="environment"):
            validate_report(make_report(environment=None))

    def test_rejects_non_dict_results(self):
        report = make_report()
        report["results"] = []
        with pytest.raises(ValueError, match="results"):
            validate_report(report)

    def test_rejects_unknown_unit(self):
        results = {"x": make_entry(1.0, unit="ms")}
        with pytest.raises(ValueError, match=r"results\['x'\].*unit"):
            validate_report(make_report(results=results))

    def test_rejects_non_bool_higher_is_better(self):
        results = {"x": make_entry(1.0, higher_is_better=1)}
        with pytest.raises(ValueError, match="higher_is_better"):
            validate_report(make_report(results=results))

    @pytest.mark.parametrize("key", ["median", "best", "worst",
                                     "dispersion"])
    def test_rejects_negative_statistics(self, key):
        entry = make_entry(1.0)
        entry[key] = -0.5
        results = {"x": entry}
        with pytest.raises(ValueError, match=key):
            validate_report(make_report(results=results))

    @pytest.mark.parametrize("runs", [[], None, [1.0, "x"], [1.0, -2.0],
                                      [True]])
    def test_rejects_bad_runs(self, runs):
        results = {"x": make_entry(1.0, runs=runs)}
        with pytest.raises(ValueError, match="runs"):
            validate_report(make_report(results=results))

    def test_rejects_non_dict_meta(self):
        results = {"x": make_entry(1.0, meta=None)}
        with pytest.raises(ValueError, match="meta"):
            validate_report(make_report(results=results))

    def test_error_names_the_offending_benchmark(self):
        results = {"good": make_entry(1.0),
                   "bad.one": make_entry(1.0, unit="furlongs")}
        with pytest.raises(ValueError, match=r"results\['bad.one'\]"):
            validate_report(make_report(results=results))


# ---------------------------------------------------------------------------
# Comparison logic
# ---------------------------------------------------------------------------


class TestCompare:
    def test_ops_per_sec_speedup_orientation(self):
        # ops/s: higher is better, speedup = current / baseline.
        base = make_report({"m": make_entry(100.0)})
        cur = make_report({"m": make_entry(150.0)})
        (comp,) = compare(cur, base)
        assert comp.speedup == pytest.approx(1.5)
        assert not comp.regressed

    def test_wall_seconds_speedup_orientation(self):
        # "s": lower is better, speedup = baseline / current.
        base = make_report({"e2e": make_entry(
            4.0, unit="s", higher_is_better=False)})
        cur = make_report({"e2e": make_entry(
            2.0, unit="s", higher_is_better=False)})
        (comp,) = compare(cur, base)
        assert comp.speedup == pytest.approx(2.0)
        assert not comp.regressed

    def test_regression_flagged_beyond_threshold(self):
        base = make_report({"m": make_entry(100.0)})
        cur = make_report({"m": make_entry(70.0)})
        (comp,) = compare(cur, base, threshold=0.25)
        assert comp.speedup == pytest.approx(0.7)
        assert comp.regressed

    def test_within_threshold_is_not_a_regression(self):
        base = make_report({"m": make_entry(100.0)})
        cur = make_report({"m": make_entry(80.0)})
        (comp,) = compare(cur, base, threshold=0.25)
        assert comp.speedup == pytest.approx(0.8)
        assert not comp.regressed

    def test_slower_wall_seconds_regress(self):
        base = make_report({"e2e": make_entry(
            1.0, unit="s", higher_is_better=False)})
        cur = make_report({"e2e": make_entry(
            2.0, unit="s", higher_is_better=False)})
        (comp,) = compare(cur, base, threshold=0.25)
        assert comp.speedup == pytest.approx(0.5)
        assert comp.regressed

    def test_benchmark_missing_from_current_is_skipped(self):
        base = make_report({"kept": make_entry(1.0),
                            "dropped": make_entry(1.0)})
        cur = make_report({"kept": make_entry(1.0)})
        comps = compare(cur, base)
        assert [c.name for c in comps] == ["kept"]

    def test_comparisons_sorted_by_name(self):
        entries = {name: make_entry(1.0) for name in ("b", "a", "c")}
        comps = compare(make_report(dict(entries)),
                        make_report(dict(entries)))
        assert [c.name for c in comps] == ["a", "b", "c"]

    def test_rejects_negative_threshold(self):
        report = make_report()
        with pytest.raises(ValueError, match="threshold"):
            compare(report, report, threshold=-0.1)

    def test_compare_uses_best_not_median(self):
        # Interference on a shared machine is one-sided, so comparisons
        # use each side's best run; the median is the report headline.
        base = make_report({"m": make_entry(100.0, best=120.0)})
        cur = make_report({"m": make_entry(60.0, best=115.0)})
        (comp,) = compare(cur, base, threshold=0.25)
        assert comp.baseline == 120.0
        assert comp.current == 115.0
        assert not comp.regressed

    def test_format_marks_regressions(self):
        base = make_report({"m": make_entry(100.0)})
        cur = make_report({"m": make_entry(10.0)})
        (comp,) = compare(cur, base)
        assert "REGRESSED" in comp.format()


# ---------------------------------------------------------------------------
# Suite definition and report mechanics
# ---------------------------------------------------------------------------


def fake_spec(name, values, unit="ops/s", higher_is_better=True):
    """A spec whose run_once yields successive canned values."""
    feed = iter(values)

    def make(ctx):
        return lambda: (next(feed), {"canned": True})

    return BenchSpec(name, unit, higher_is_better, "test fixture", make)


class TestSuiteAndReports:
    def test_pinned_suite_names(self):
        names = [s.name for s in iter_specs()]
        assert names[:7] == [
            "micro.iss", "micro.iss.reference", "micro.cache",
            "micro.profiler.replay", "micro.cache_batch", "micro.gatesim",
            "micro.checkpoint.journal"]
        from repro.apps import ALL_APPS
        for app in ALL_APPS:
            assert f"e2e.table1.{app}" in names
        assert names[-1] == "e2e.explore"

    def test_iter_specs_substring_filter(self):
        names = [s.name for s in iter_specs("micro.iss")]
        assert names == ["micro.iss", "micro.iss.reference"]
        assert iter_specs("no-such-benchmark") == []

    def test_run_suite_statistics_odd_repeats(self):
        spec = fake_spec("fake", [3.0, 1.0, 2.0])
        report = run_suite([spec], repeats=3, ctx=BenchContext())
        entry = report["results"]["fake"]
        assert entry["median"] == 2.0
        assert entry["best"] == 3.0
        assert entry["worst"] == 1.0
        assert entry["dispersion"] == pytest.approx(1.0)
        assert entry["runs"] == [3.0, 1.0, 2.0]
        assert entry["meta"] == {"canned": True}

    def test_run_suite_statistics_even_repeats(self):
        spec = fake_spec("fake", [4.0, 1.0], unit="s",
                         higher_is_better=False)
        report = run_suite([spec], repeats=2, ctx=BenchContext())
        entry = report["results"]["fake"]
        assert entry["median"] == 2.5
        assert entry["best"] == 1.0    # lower is better
        assert entry["worst"] == 4.0

    def test_run_suite_report_is_schema_valid(self):
        report = run_suite([fake_spec("fake", [1.0])], repeats=1,
                           ctx=BenchContext())
        validate_report(report)
        assert report["schema"] == BENCH_SCHEMA_NAME
        assert report["version"] == BENCH_SCHEMA_VERSION

    def test_run_suite_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_suite([], repeats=0)

    def test_default_report_filename(self):
        report = make_report(created="2026-08-07T12:34:56Z")
        assert default_report_filename(report) == \
            "BENCH_20260807T123456Z.json"
        assert BASELINE_FILENAME == "BENCH_baseline.json"

    def test_write_then_load_round_trips(self, tmp_path):
        report = make_report()
        path = str(tmp_path / "BENCH_test.json")
        write_report(report, path)
        assert load_report(path) == report

    def test_load_report_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro-bench file"):
            load_report(str(path))

    def test_format_report_lists_every_benchmark(self):
        report = make_report({"a": make_entry(1.0),
                              "b": make_entry(2.0, unit="s",
                                              higher_is_better=False)})
        text = format_report(report)
        assert "a" in text and "b" in text and "ops/s" in text

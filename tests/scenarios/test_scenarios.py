"""Scenario library, frontier runner and ``repro pareto`` CLI tests.

The determinism contract under test: a scenario's frontier report is a
pure function of (scenario, library, app sources) — reruns are
byte-identical, and a killed-then-resumed checkpointed run reproduces
the identical file.
"""

import copy
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.apps import ALL_APPS, app_by_name
from repro.cli import main
from repro.core import SweepCheckpoint
from repro.core.checkpoint import JOURNAL_MAGIC, _RECORD_HEADER, scan_journal
from repro.obs import Tracer
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    run_scenario,
    scenario_by_name,
    scenario_context_key,
    validate_frontier_report,
    write_frontier_report,
)
from repro.scenarios.runner import variant_app
from repro.verify import verify_frontier_report


@pytest.fixture(scope="module")
def quick_result():
    return run_scenario(scenario_by_name("quick"))


# ---------------------------------------------------------------------------
# Catalog and variant expansion
# ---------------------------------------------------------------------------

class TestCatalog:
    def test_every_scenario_names_real_apps(self):
        for scenario in SCENARIOS.values():
            for name in scenario.apps:
                assert name in ALL_APPS, \
                    f"{scenario.name} references unknown app {name!r}"

    def test_geometry_scenarios_only_touch_cache_modeling_apps(self):
        for scenario in SCENARIOS.values():
            if all(geo is None for geo in scenario.geometries):
                continue
            for name in scenario.apps:
                assert app_by_name(name).model_caches, \
                    f"{scenario.name}: {name} does not model its caches"

    def test_variant_grid_is_cross_product_in_order(self):
        scenario = scenario_by_name("fg-sweep")
        variants = scenario.variants()
        assert len(variants) == (len(scenario.tech)
                                 * len(scenario.weights)
                                 * len(scenario.geometries)
                                 * len(scenario.n_max_clusters))
        assert [v.index for v in variants] == list(range(len(variants)))
        assert [(v.f_energy, v.g_hardware) for v in variants] \
            == list(scenario.weights)

    def test_tech_axis_is_outermost_and_labelled(self):
        scenario = scenario_by_name("tech-quick")
        from repro.tech import REFERENCE_NODE, tech_names
        variants = scenario.variants()
        assert len(variants) == len(tech_names())
        assert [v.tech for v in variants] == list(tech_names())
        assert variants[0].tech == REFERENCE_NODE
        # The reference node keeps the historical unmarked label.
        assert variants[0].label == "F1/G0.05:N8"
        assert variants[1].label == "F1/G0.05:N8@cmos6-45nm"

    def test_digests_are_distinct_and_stable(self):
        digests = {s.digest() for s in SCENARIOS.values()}
        assert len(digests) == len(SCENARIOS)
        assert scenario_by_name("quick").digest() \
            == scenario_by_name("quick").digest()

    def test_context_keys_discriminate_scenarios(self):
        assert scenario_context_key(scenario_by_name("quick")) \
            != scenario_context_key(scenario_by_name("six-apps"))

    def test_unknown_scenario_raises_with_catalog(self):
        with pytest.raises(KeyError, match="quick"):
            scenario_by_name("nope")

    def test_variant_labels(self):
        scenario = scenario_by_name("geometry")
        labels = [v.label for v in scenario.variants()]
        assert labels[0] == "F1/G0.05:N8"
        assert "F1/G0.05:small-caches:N8" in labels


class TestVariantApp:
    def test_overrides_weights_but_preserves_base_config(self):
        scenario = scenario_by_name("quick")
        variant = scenario.variants()[1]  # F0.5/G0.5
        app = variant_app(scenario, "ckey", variant)
        assert app.config.objective.f_energy == 0.5
        assert app.config.objective.g_hardware == 0.5
        # ckey's own designer constraint must survive the override.
        assert app.config.objective.geq_cap == 26_000

    def test_geometry_override_rejected_without_cache_model(self):
        scenario = Scenario(
            name="bad", description="", apps=("ckey",),
            geometries=(scenario_by_name("geometry").geometries[1],))
        with pytest.raises(ValueError, match="does not model"):
            variant_app(scenario, "ckey", scenario.variants()[0])

    def test_geometry_override_applies_caches(self):
        scenario = scenario_by_name("geometry")
        variant = next(v for v in scenario.variants()
                       if v.geometry is not None)
        app = variant_app(scenario, "digs", variant)
        assert app.icache == variant.geometry.icache
        assert app.dcache == variant.geometry.dcache


# ---------------------------------------------------------------------------
# Runner determinism and report schema
# ---------------------------------------------------------------------------

class TestRunner:
    def test_report_is_deterministic_and_round_trips(self, tmp_path,
                                                     quick_result):
        rerun = run_scenario(scenario_by_name("quick"))
        assert rerun.report == quick_result.report
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_frontier_report(quick_result.report, str(a))
        write_frontier_report(rerun.report, str(b))
        assert a.read_bytes() == b.read_bytes()
        validate_frontier_report(json.loads(a.read_text()))

    def test_report_carries_every_variant_and_the_initial_point(
            self, quick_result):
        section = quick_result.report["apps"]["ckey"]
        scenario = scenario_by_name("quick")
        assert [v["index"] for v in section["variants"]] \
            == [v.index for v in scenario.variants()]
        initials = [p for p in section["points"] if p["label"] == "<initial>"]
        # One geometry in play -> exactly one all-software point.
        assert len(initials) == 1
        assert initials[0]["geq"] == 0

    def test_scalar_pick_matches_a_listed_point(self, quick_result):
        section = quick_result.report["apps"]["ckey"]
        labels = {p["label"] for p in section["points"]}
        for row in section["variants"]:
            if row["scalar_pick"] is not None:
                assert row["scalar_pick"] in labels

    def test_frontier_consistency_check_passes(self, quick_result):
        audit = verify_frontier_report(quick_result.report)
        assert "pareto.frontier" in audit.checks_run
        assert not audit.has_errors

    def test_pareto_counters_and_spans_emitted(self):
        tracer = Tracer("scenario")
        run_scenario(scenario_by_name("quick"), tracer=tracer)
        assert tracer.counters["pareto.variants"] == 2
        assert tracer.counters["pareto.points"] >= 3
        assert "pareto.front" in tracer.counters
        def names(node):
            collected = {node.name}
            for child in node.children.values():
                collected |= names(child)
            return collected

        assert {"pareto.scenario", "pareto.variant"} <= names(tracer.root)


class TestValidation:
    def _valid(self, quick_result):
        return copy.deepcopy(quick_result.report)

    def test_rejects_wrong_schema_and_version(self, quick_result):
        data = self._valid(quick_result)
        data["schema"] = "other"
        with pytest.raises(ValueError, match=r"\$\.schema"):
            validate_frontier_report(data)
        data = self._valid(quick_result)
        data["version"] = 99
        with pytest.raises(ValueError, match=r"\$\.version"):
            validate_frontier_report(data)

    def test_rejects_point_with_missing_or_extra_keys(self, quick_result):
        data = self._valid(quick_result)
        del data["apps"]["ckey"]["points"][0]["geq"]
        with pytest.raises(ValueError, match=r"points\[0\]"):
            validate_frontier_report(data)
        data = self._valid(quick_result)
        data["apps"]["ckey"]["points"][0]["extra"] = 1
        with pytest.raises(ValueError, match=r"points\[0\]"):
            validate_frontier_report(data)

    def test_rejects_out_of_range_front_index(self, quick_result):
        data = self._valid(quick_result)
        data["apps"]["ckey"]["front"].append(999)
        with pytest.raises(ValueError, match=r"\.front"):
            validate_frontier_report(data)

    def test_rejects_knee_outside_front(self, quick_result):
        data = self._valid(quick_result)
        section = data["apps"]["ckey"]
        outside = next(i for i in range(len(section["points"]))
                       if i not in section["front"])
        section["knee"] = outside
        with pytest.raises(ValueError, match=r"\.knee"):
            validate_frontier_report(data)

    def test_rejects_unknown_variant_reference(self, quick_result):
        data = self._valid(quick_result)
        data["apps"]["ckey"]["points"][0]["variant"] = 17
        with pytest.raises(ValueError, match="unknown variant"):
            validate_frontier_report(data)


class TestFrontierCheck:
    def _tampered(self, quick_result, mutate):
        data = copy.deepcopy(quick_result.report)
        mutate(data["apps"]["ckey"])
        return verify_frontier_report(data)

    def test_tampered_objective_is_caught(self, quick_result):
        def mutate(section):
            section["points"][1]["objective"] += 1e-9
        audit = self._tampered(quick_result, mutate)
        assert audit.has_errors
        assert any("re-derive" in f.message for f in audit.errors)

    def test_tampered_front_is_caught(self, quick_result):
        audit = self._tampered(
            quick_result, lambda s: s["front"].pop())
        assert audit.has_errors

    def test_tampered_hypervolume_is_caught(self, quick_result):
        def mutate(section):
            section["hypervolume"] *= 1.0000001
        assert self._tampered(quick_result, mutate).has_errors

    def test_malformed_report_is_one_error_not_a_crash(self):
        audit = verify_frontier_report({"schema": "junk"})
        assert audit.has_errors
        assert len(audit.errors) == 1


# ---------------------------------------------------------------------------
# Checkpointed scenario runs (kill-safety without subprocesses)
# ---------------------------------------------------------------------------

class TestScenarioCheckpoint:
    def test_truncated_journal_resumes_byte_identical(self, tmp_path,
                                                      quick_result):
        scenario = scenario_by_name("quick")
        directory = str(tmp_path / "ck")
        context = scenario_context_key(scenario)
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind_context(context, label=scenario.name)
            run_scenario(scenario, cache=ckpt.cache)
        journal = os.path.join(directory, "cache.journal")
        assert scan_journal(journal)["records"] >= 3
        # Simulate a SIGKILL after the second record: keep a prefix.
        with open(journal, "r+b") as fh:
            fh.seek(len(JOURNAL_MAGIC))
            for _ in range(2):
                length, _digest = _RECORD_HEADER.unpack(
                    fh.read(_RECORD_HEADER.size))
                fh.seek(length, os.SEEK_CUR)
            fh.truncate(fh.tell())
        tracer = Tracer("resume")
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind_context(context, label=scenario.name)
            resumed = run_scenario(scenario, cache=ckpt.cache,
                                   tracer=tracer)
        assert resumed.report == quick_result.report
        assert tracer.counters["explore.cache.hits"] >= 2
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_frontier_report(quick_result.report, str(a))
        write_frontier_report(resumed.report, str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_checkpoint_refuses_other_scenario(self, tmp_path):
        from repro.core import CheckpointMismatch
        directory = str(tmp_path / "ck")
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind_context(scenario_context_key(scenario_by_name("quick")),
                              label="quick")
        with SweepCheckpoint(directory) as ckpt:
            with pytest.raises(CheckpointMismatch):
                ckpt.bind_context(
                    scenario_context_key(scenario_by_name("nmax")),
                    label="nmax")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestParetoCLI:
    def test_list_prints_catalog(self, capsys):
        assert main(["pareto", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_missing_scenario_name(self, capsys):
        assert main(["pareto"]) == 1
        assert "--list" in capsys.readouterr().err

    def test_unknown_scenario(self, capsys):
        assert main(["pareto", "bogus"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["pareto", "quick", "--resume"]) == 1
        assert "--resume requires" in capsys.readouterr().err

    def test_quick_run_emits_valid_report(self, capsys, tmp_path,
                                          quick_result):
        out = str(tmp_path / "frontier.json")
        assert main(["pareto", "quick", "--out", out,
                     "--verify", "--strict"]) == 0
        data = json.loads(Path(out).read_text())
        validate_frontier_report(data)
        assert data == quick_result.report
        stdout = capsys.readouterr().out
        assert "knee" in stdout

    def test_checkpoint_then_resume_byte_identical(self, capsys, tmp_path):
        directory = str(tmp_path / "ck")
        first = str(tmp_path / "first.json")
        second = str(tmp_path / "second.json")
        assert main(["pareto", "quick", "--checkpoint", directory,
                     "--out", first]) == 0
        capsys.readouterr()
        assert main(["pareto", "quick", "--checkpoint", directory,
                     "--resume", "--out", second]) == 0
        assert "checkpoint intact" in capsys.readouterr().out
        assert Path(first).read_bytes() == Path(second).read_bytes()

    def test_resume_refuses_other_scenario(self, capsys, tmp_path):
        directory = str(tmp_path / "ck")
        assert main(["pareto", "quick", "--checkpoint", directory,
                     "--out", str(tmp_path / "f.json")]) == 0
        capsys.readouterr()
        assert main(["pareto", "nmax", "--checkpoint", directory,
                     "--resume"]) == 1
        assert "cannot resume" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Acceptance: a SIGKILLed scenario run resumes to the identical report
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_cli_acceptance_killed_scenario_resumes_byte_identical(tmp_path):
    """Kill ``repro pareto six-apps --checkpoint`` mid-sweep, resume, and
    require the resumed report to be byte-identical to an uninterrupted
    run's."""
    src_dir = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p)
    reference = str(tmp_path / "reference.json")
    done = subprocess.run(
        [sys.executable, "-m", "repro", "pareto", "six-apps",
         "--out", reference],
        capture_output=True, text=True, timeout=600, env=env)
    assert done.returncode == 0, done.stderr

    directory = str(tmp_path / "ck")
    journal = os.path.join(directory, "cache.journal")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "pareto", "six-apps",
         "--checkpoint", directory,
         "--out", str(tmp_path / "killed.json")],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)
    try:
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline and proc.poll() is None:
            if os.path.exists(journal) \
                    and scan_journal(journal)["records"] >= 3:
                break
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()

    resumed = str(tmp_path / "resumed.json")
    resume = subprocess.run(
        [sys.executable, "-m", "repro", "pareto", "six-apps",
         "--checkpoint", directory, "--resume",
         "--out", resumed, "--verify", "--strict"],
        capture_output=True, text=True, timeout=600, env=env)
    assert resume.returncode == 0, resume.stderr
    assert Path(resumed).read_bytes() == Path(reference).read_bytes()

"""Technology-model registry, scaling laws and --tech CLI tests.

Covers the ISSUE-7 contract: registry round-trip/serialization,
monotonic scaling-law properties, the reference node's bit-identity
guarantee, the ``tech.conservation`` check, and the unknown-node CLI
error path (see ``docs/TECHNOLOGY.md``).
"""

import dataclasses

import pytest

from repro.core.explore import ExplorationEngine, library_digest
from repro.core.flow import LowPowerFlow
from repro.apps import app_by_name
from repro.tech import (
    REFERENCE_NODE,
    TECH_NODES,
    TechnologyModel,
    cmos6_library,
    derive_node,
    format_catalog_table,
    reference_model,
    tech_by_name,
    tech_for_library,
    tech_names,
    with_gated_asic,
)
from repro.tech.scaling import (
    FREQ_SCALE,
    GATE_LEAKAGE_PJ,
    VDD_V,
    dynamic_energy_factor,
    frequency_factor,
    wire_energy_factor,
)
from repro.verify.findings import VerificationReport
from repro.verify.checks import check_tech_conservation


SCALED_NODES = [name for name in tech_names() if name != REFERENCE_NODE]


# ---------------------------------------------------------------------------
# Registry contents and serialization
# ---------------------------------------------------------------------------

def test_registry_catalog_order():
    assert tech_names() == ("cmos6-800nm", "cmos6-45nm", "cmos6-32nm",
                            "cmos6-22nm", "cmos6-16nm")
    assert tech_names()[0] == REFERENCE_NODE


def test_tech_by_name_unknown_lists_catalog():
    with pytest.raises(KeyError, match="cmos6-800nm"):
        tech_by_name("cmos6-7nm")


def test_derive_node_rejects_unknown_entries():
    with pytest.raises(KeyError, match="policy"):
        derive_node(45, policy="optimistic")
    with pytest.raises(KeyError, match="nm"):
        derive_node(7)


def test_to_dict_round_trips_every_node():
    for model in TECH_NODES.values():
        data = model.to_dict()
        rebuilt = TechnologyModel.from_dict(data)
        assert rebuilt == model
        assert rebuilt.library() == model.library()


def test_catalog_table_lists_every_node():
    table = format_catalog_table()
    for name in tech_names():
        assert f"`{name}`" in table


# ---------------------------------------------------------------------------
# Reference-node bit-identity (the golden guarantee)
# ---------------------------------------------------------------------------

def test_reference_node_library_is_bit_identical():
    ref = tech_by_name(REFERENCE_NODE).library()
    base = cmos6_library()
    assert ref == base
    assert library_digest(ref) == library_digest(base)


def test_reference_flow_is_bit_identical():
    app = app_by_name("ckey")
    default = LowPowerFlow().run(app)
    via_registry = LowPowerFlow(
        library=tech_by_name(REFERENCE_NODE).library()).run(
        app_by_name("ckey"))
    assert via_registry.initial.total_energy_nj \
        == default.initial.total_energy_nj
    assert (via_registry.partitioned is None) \
        == (default.partitioned is None)
    if default.partitioned is not None:
        assert via_registry.partitioned.total_energy_nj \
            == default.partitioned.total_energy_nj


# ---------------------------------------------------------------------------
# Scaling-law monotonicity (energy non-increasing with node shrink)
# ---------------------------------------------------------------------------

def _itrs_shrink_order():
    return [TECH_NODES[name] for name in tech_names()]


def test_per_gate_total_energy_non_increasing():
    # Dynamic + leakage per gate-cycle must not grow as the node shrinks
    # (at the fixed itrs vdd policy).
    totals = [m.gate_dynamic_energy_pj + m.gate_leakage_energy_pj
              for m in _itrs_shrink_order()]
    assert all(a >= b for a, b in zip(totals, totals[1:]))


def test_core_and_cache_energies_non_increasing():
    models = _itrs_shrink_order()
    for attr in ("cycle_energy_nj",):
        values = [getattr(m.core, attr) for m in models]
        assert all(a >= b for a, b in zip(values, values[1:]))
    for attr in ("bitline_pj", "senseamp_pj", "decode_pj", "output_pj"):
        values = [getattr(m.cache, attr) for m in models]
        assert all(a >= b for a, b in zip(values, values[1:]))
    for attr in ("bus_read_energy_nj", "mem_write_energy_nj"):
        values = [getattr(m, attr) for m in models]
        assert all(a >= b for a, b in zip(values, values[1:]))


def test_resource_energies_non_increasing():
    libraries = [m.library() for m in _itrs_shrink_order()]
    for kind in libraries[0].resources:
        for attr in ("energy_active_pj", "energy_idle_pj"):
            values = [getattr(lib.resources[kind], attr)
                      for lib in libraries]
            assert all(a >= b for a, b in zip(values, values[1:])), \
                (kind, attr)


def test_clock_frequency_non_decreasing():
    clocks = [m.core.clock_mhz for m in _itrs_shrink_order()]
    assert all(a <= b for a, b in zip(clocks, clocks[1:]))


def test_scaling_factors_match_tables():
    for name in SCALED_NODES:
        model = TECH_NODES[name]
        nm = int(model.feature_nm)
        vdd = VDD_V["itrs"][nm]
        assert model.vdd_v == vdd
        assert model.dynamic_scale == dynamic_energy_factor(nm, vdd)
        assert model.gate_leakage_energy_pj == GATE_LEAKAGE_PJ[nm]
        assert model.time_scale == 1.0 / frequency_factor(nm, "itrs")
        assert model.bus_read_energy_nj == \
            wire_energy_factor(vdd) * reference_model().bus_read_energy_nj
    assert set(FREQ_SCALE) == set(VDD_V)


# ---------------------------------------------------------------------------
# tech.conservation check
# ---------------------------------------------------------------------------

def test_tech_conservation_clean_on_every_node():
    for name, model in TECH_NODES.items():
        report = VerificationReport(label=name)
        check_tech_conservation(report, model.library())
        assert "tech.conservation" in report.checks_run
        assert not report.has_errors, name


def test_tech_conservation_allows_designer_knobs():
    gated = with_gated_asic(tech_by_name("cmos6-45nm").library())
    report = VerificationReport(label="gated")
    check_tech_conservation(report, gated)
    assert not report.has_errors


def test_tech_conservation_catches_tampering():
    tampered = dataclasses.replace(
        tech_by_name("cmos6-45nm").library(),
        mem_read_energy_nj=tech_by_name(
            "cmos6-45nm").library().mem_read_energy_nj * 2)
    report = VerificationReport(label="tampered")
    check_tech_conservation(report, tampered)
    assert report.has_errors


def test_tech_conservation_skips_unregistered_libraries():
    custom = dataclasses.replace(cmos6_library(), name="my-custom-lib")
    report = VerificationReport(label="custom")
    check_tech_conservation(report, custom)
    assert "tech.conservation" not in report.checks_run
    assert not report.findings


def test_tech_for_library_matches_reference_and_nodes():
    assert tech_for_library(cmos6_library()).node == REFERENCE_NODE
    lib45 = tech_by_name("cmos6-45nm").library()
    assert tech_for_library(lib45).node == "cmos6-45nm"


# ---------------------------------------------------------------------------
# Scaled nodes run the flow end to end
# ---------------------------------------------------------------------------

def test_scaled_node_flow_verifies_clean():
    library = tech_by_name("cmos6-45nm").library()
    flow = LowPowerFlow(library=library, verify=True)
    result = flow.run(app_by_name("ckey"))
    assert result.verification is not None
    assert not result.verification.has_errors
    reference = LowPowerFlow().run(app_by_name("ckey"))
    assert result.initial.total_energy_nj \
        < reference.initial.total_energy_nj


def test_engine_explore_accepts_library_override():
    library = tech_by_name("cmos6-32nm").library()
    with ExplorationEngine() as engine:
        scaled = engine.explore(app_by_name("ckey"), library=library)
        default = engine.explore(app_by_name("ckey"))
    assert scaled.initial.total_energy_nj \
        < default.initial.total_energy_nj
    # Different nodes must never alias in the evaluation cache.
    assert engine.cache.stats()["entries"] >= 2


# ---------------------------------------------------------------------------
# CLI error path
# ---------------------------------------------------------------------------

def test_cli_unknown_tech_exits_2(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "ckey", "--tech", "cmos6-5nm"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "cmos6-800nm" in err and "cmos6-16nm" in err

"""Technology library, resource set and GEQ tests."""

import pytest

from repro.ir.ops import OpKind
from repro.tech import (
    ResourceKind,
    ResourceSet,
    cells_of_geq,
    cmos6_library,
    compatible_resources,
    default_resource_sets,
    geq_of_set,
    operation_latency,
)
from repro.tech.geq import geq_of_counts


def test_library_covers_all_resource_kinds(library):
    for kind in ResourceKind:
        spec = library.spec(kind)
        assert spec.geq > 0
        assert spec.energy_active_pj > spec.energy_idle_pj > 0
        assert spec.t_cyc_ns > 0


def test_multiplier_dwarfs_alu(library):
    assert library.spec(ResourceKind.MULTIPLIER).geq > \
        2 * library.spec(ResourceKind.ALU).geq


def test_comparator_is_smallest_functional_unit(library):
    comparator = library.spec(ResourceKind.COMPARATOR).geq
    for kind in (ResourceKind.ALU, ResourceKind.MULTIPLIER,
                 ResourceKind.DIVIDER, ResourceKind.SHIFTER,
                 ResourceKind.MEMPORT):
        assert library.spec(kind).geq > comparator


def test_p_av_consistent_with_energy(library):
    spec = library.spec(ResourceKind.ALU)
    assert spec.p_av_mw == pytest.approx(spec.energy_active_pj / spec.t_cyc_ns)


def test_up_operating_point(library):
    assert library.up_clock_mhz == 20.0
    assert library.up_cycle_time_ns == 50.0
    assert 10.0 <= library.up_cycle_energy_nj <= 20.0


def test_resource_energy_accumulation(library):
    active = library.resource_energy_nj(ResourceKind.ALU, 1000)
    mixed = library.resource_energy_nj(ResourceKind.ALU, 1000, 1000)
    assert mixed > active > 0


def test_gate_level_consistency_with_alu_spec(library):
    """The gate-level constants should reproduce the ALU's active energy to
    first order (documented self-consistency of the library)."""
    spec = library.spec(ResourceKind.ALU)
    gate_estimate = (spec.geq * library.active_activity
                     * library.gate_switch_energy_pj)
    assert gate_estimate == pytest.approx(spec.energy_active_pj, rel=0.1)


# ---------------------------------------------------------------------------
# Compatibility and latency
# ---------------------------------------------------------------------------

def test_sorted_rs_list_smallest_first(library):
    for kind in (OpKind.EQ, OpKind.LT, OpKind.SHL):
        kinds = compatible_resources(kind)
        sizes = [library.spec(k).geq for k in kinds]
        assert sizes == sorted(sizes)


def test_control_ops_have_no_resources():
    for kind in (OpKind.BRANCH, OpKind.JUMP, OpKind.CALL, OpKind.RETURN,
                 OpKind.NOP):
        assert compatible_resources(kind) == ()


def test_compare_can_fall_back_to_alu():
    assert ResourceKind.ALU in compatible_resources(OpKind.LT)
    assert compatible_resources(OpKind.LT)[0] is ResourceKind.COMPARATOR


@pytest.mark.parametrize("kind,latency", [
    (OpKind.ADD, 1), (OpKind.MUL, 2), (OpKind.DIV, 8), (OpKind.MOD, 8),
    (OpKind.LOAD, 2), (OpKind.STORE, 1), (OpKind.SHL, 1),
])
def test_operation_latencies(kind, latency):
    assert operation_latency(kind) == latency


# ---------------------------------------------------------------------------
# ResourceSet
# ---------------------------------------------------------------------------

def test_resource_set_basics():
    rs = ResourceSet("s", {ResourceKind.ALU: 2, ResourceKind.SHIFTER: 0})
    assert rs.count(ResourceKind.ALU) == 2
    assert rs.count(ResourceKind.SHIFTER) == 0
    assert ResourceKind.SHIFTER not in rs
    assert rs.total_instances == 2


def test_resource_set_negative_count_rejected():
    with pytest.raises(ValueError):
        ResourceSet("bad", {ResourceKind.ALU: -1})


def test_can_execute_through_fallback():
    rs = ResourceSet("alu-only", {ResourceKind.ALU: 1})
    assert rs.can_execute(OpKind.LT)       # comparator falls back to ALU
    assert not rs.can_execute(OpKind.MUL)  # no multiplier anywhere


def test_default_resource_sets_are_three_to_five():
    sets = default_resource_sets()
    assert 3 <= len(sets) <= 5
    names = [s.name for s in sets]
    assert len(set(names)) == len(names)


def test_default_sets_monotonically_grow(library):
    sets = default_resource_sets()
    sizes = [geq_of_set(library, s) for s in sets]
    assert sizes == sorted(sizes)


# ---------------------------------------------------------------------------
# GEQ helpers
# ---------------------------------------------------------------------------

def test_geq_of_set(library):
    rs = ResourceSet("s", {ResourceKind.ALU: 2})
    assert geq_of_set(library, rs) == 2 * library.spec(ResourceKind.ALU).geq


def test_geq_of_counts(library):
    counts = {ResourceKind.ALU: 1, ResourceKind.SHIFTER: 2}
    expected = (library.spec(ResourceKind.ALU).geq
                + 2 * library.spec(ResourceKind.SHIFTER).geq)
    assert geq_of_counts(library, counts) == expected


def test_cells_identity_and_validation():
    assert cells_of_geq(1234) == 1234
    with pytest.raises(ValueError):
        cells_of_geq(-1)

"""The committed corpus: format invariants and clean deterministic replay.

Every ``tests/fuzz/corpus/*.bdl`` entry is the shrunken reproducer of a
past (or deliberately injected) differential bug, or a hand-written
semantic edge case.  The tier-1 contract is that replaying the whole
corpus through the full oracle stack is *clean* — any mismatch here
means a real engine regression.
"""

from pathlib import Path

import pytest

from repro.fuzz import FuzzCampaign, OracleStack, load_corpus, write_entry
from repro.fuzz.corpus import HEADER, CorpusError, load_entry
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracle import CACHE_GEOMETRIES

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)
GEOMETRIES = sorted(CACHE_GEOMETRIES)


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 6


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_replays_clean(entry):
    # Rotate geometries deterministically by position, like the campaign.
    geometry = GEOMETRIES[ENTRIES.index(entry) % len(GEOMETRIES)]
    outcome = OracleStack().check(entry.program, geometry=geometry)
    assert outcome.status == "ok", \
        f"{entry.name}: {[m.detail for m in outcome.mismatches]}"


def test_campaign_replay_of_committed_corpus_is_clean():
    report = FuzzCampaign().replay(CORPUS_DIR)
    assert report.ok
    assert report.replayed == len(ENTRIES)
    assert report.exit_code == 0


def test_shrunken_reproducers_stay_small():
    for entry in ENTRIES:
        if entry.name.startswith("shrink-"):
            assert entry.program.source_lines <= 15, \
                f"{entry.name} has {entry.program.source_lines} lines"


def test_every_entry_declares_its_workload():
    for entry in ENTRIES:
        # Hand-written entries carry a note; shrunken ones carry a kind.
        assert entry.note or entry.kind, f"{entry.name} has no provenance"


def test_write_then_load_round_trips(tmp_path):
    program = FuzzProgram(
        name="round trip/entry",  # unsafe characters get sanitized
        source="func main(a: int) -> int {\n    return (a + 1);\n}\n",
        args=(41,), globals_init={"G": [1, 2]}, seed=9)
    path = write_entry(tmp_path, program, kind="result.iss", note="test")
    assert path.name == "round-trip-entry.bdl"
    entry = load_entry(path)
    assert entry.program.source == program.source
    assert entry.program.args == program.args
    assert entry.program.globals_init == program.globals_init
    assert entry.program.seed == 9
    assert entry.kind == "result.iss"
    assert entry.note == "test"


def test_missing_header_is_rejected(tmp_path):
    bad = tmp_path / "bad.bdl"
    bad.write_text("func main() -> int { return 0; }\n")
    with pytest.raises(CorpusError, match="header"):
        load_entry(bad)


def test_missing_meta_is_rejected(tmp_path):
    bad = tmp_path / "bad.bdl"
    bad.write_text(f"{HEADER}\nfunc main() -> int {{ return 0; }}\n")
    with pytest.raises(CorpusError, match="meta"):
        load_entry(bad)


def test_malformed_meta_json_is_rejected(tmp_path):
    bad = tmp_path / "bad.bdl"
    bad.write_text(f"{HEADER}\n# meta: {{not json}}\n")
    with pytest.raises(CorpusError, match="JSON"):
        load_entry(bad)


def test_load_corpus_on_missing_directory_is_empty(tmp_path):
    assert load_corpus(tmp_path / "nope") == []

"""The generator's two contracts: determinism and validity-by-construction.

Every generated program must compile and run to completion on the
interpreter (no out-of-bounds access, no division by zero, no
non-termination within fuel), and program ``(seed, index)`` must be the
same bytes no matter when or in what order it is generated.
"""

import pytest

from repro.fuzz import GeneratorConfig, ProgramGenerator
from repro.fuzz.generator import ARRAY_SIZES, DEFAULT_OP_WEIGHTS
from repro.lang import Interpreter, compile_source


def test_same_seed_and_index_give_identical_programs():
    a = ProgramGenerator(seed=7).generate(3)
    # A different generator instance, different call order.
    other = ProgramGenerator(seed=7)
    other.generate(0)
    b = other.generate(3)
    assert a.source == b.source
    assert a.args == b.args
    assert a.globals_init == b.globals_init


def test_different_seeds_differ():
    a = ProgramGenerator(seed=0).generate(0)
    b = ProgramGenerator(seed=1).generate(0)
    assert a.source != b.source


def test_sequential_generation_matches_explicit_indices():
    gen = ProgramGenerator(seed=5)
    sequential = [gen.generate() for _ in range(4)]
    explicit = [ProgramGenerator(seed=5).generate(i) for i in range(4)]
    assert [p.source for p in sequential] == [p.source for p in explicit]


@pytest.mark.parametrize("index", range(25))
def test_generated_programs_are_valid_by_construction(index):
    program = ProgramGenerator(seed=0).generate(index)
    compiled = compile_source(program.source, name=program.name)
    interp = Interpreter(compiled, max_steps=5_000_000)
    for name, values in program.globals_init.items():
        interp.set_global(name, values)
    # Must terminate without InterpError (bounds, div-by-zero, fuel).
    interp.run(*program.args)


def test_trip_budget_bounds_dynamic_cost():
    config = GeneratorConfig(trip_budget=500)
    for index in range(10):
        program = ProgramGenerator(seed=3, config=config).generate(index)
        interp = Interpreter(compile_source(program.source,
                                            name=program.name),
                             max_steps=2_000_000)
        for name, values in program.globals_init.items():
            interp.set_global(name, values)
        interp.run(*program.args)


def test_array_sizes_are_powers_of_two():
    # Masked indexing (& size-1) is only in-bounds for powers of two.
    assert all(size & (size - 1) == 0 for size in ARRAY_SIZES)


def test_op_weight_steering_changes_programs_deterministically():
    config = GeneratorConfig()
    boosted = config.with_op_weights({"/": 50, "%": 50})
    base = ProgramGenerator(seed=2, config=config).generate(1)
    steered = ProgramGenerator(seed=2, config=boosted).generate(1)
    steered_again = ProgramGenerator(seed=2, config=boosted).generate(1)
    assert steered.source == steered_again.source
    assert steered.source != base.source
    # Steered programs remain valid.
    interp = Interpreter(compile_source(steered.source, name=steered.name))
    for name, values in steered.globals_init.items():
        interp.set_global(name, values)
    interp.run(*steered.args)


def test_default_weights_cover_every_bdl_binary_operator():
    assert set(DEFAULT_OP_WEIGHTS) == {
        "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
        "<", "<=", ">", ">=", "==", "!=", "&&", "||"}


def test_source_lines_metric_counts_nonblank_lines():
    program = ProgramGenerator(seed=0).generate(0)
    expected = sum(1 for line in program.source.splitlines() if line.strip())
    assert program.source_lines == expected > 0

"""The campaign driver: determinism, coverage, exit codes, reproducers."""

import io

import pytest

from repro.fuzz import (
    EXIT_MISMATCH,
    CampaignConfig,
    CoverageMap,
    FuzzCampaign,
    load_corpus,
    run_fuzz_command,
)
from repro.obs import Tracer


def _run(**kwargs):
    stdout = io.StringIO()
    code = run_fuzz_command(stdout=stdout, **kwargs)
    return code, stdout.getvalue()


@pytest.mark.slow
def test_small_campaign_is_clean_and_deterministic():
    first = _run(seed=0, count=12, flow_every=6)
    second = _run(seed=0, count=12, flow_every=6)
    assert first == second
    code, text = first
    assert code == 0
    assert "programs=12" in text
    assert "flow-checks=2" in text
    assert text.strip().endswith("fuzz: OK")


def test_injected_bug_exits_with_mismatch_status(tmp_path):
    code, text = _run(seed=0, count=10, flow_every=0,
                      inject_bug="iss-sub-swap", max_mismatches=1,
                      out_dir=str(tmp_path))
    assert code == EXIT_MISMATCH == 3
    assert "MISMATCH" in text and "result.iss" in text
    # The shrunken reproducer landed as a loadable corpus entry ...
    entries = load_corpus(tmp_path)
    assert len(entries) == 1
    assert entries[0].kind == "result.iss"
    assert entries[0].program.source_lines <= 15
    # ... and the report shows the size reduction.
    assert "shrunk" in text


def test_no_shrink_skips_reduction():
    code, text = _run(seed=0, count=10, flow_every=0,
                      inject_bug="iss-sub-swap", max_mismatches=1,
                      shrink=False)
    assert code == EXIT_MISMATCH
    assert "shrunk" not in text


def test_max_mismatches_stops_the_campaign():
    config = CampaignConfig(seed=0, count=50, flow_every=0,
                            inject_bug="iss-sub-swap", shrink=False,
                            max_mismatches=2)
    report = FuzzCampaign(config).run()
    assert len(report.mismatches) == 2
    assert report.programs < 50


def test_campaign_counters_reach_the_tracer():
    tracer = Tracer("fuzz-test")
    config = CampaignConfig(seed=0, count=5, flow_every=0)
    FuzzCampaign(config, tracer=tracer).run()
    assert tracer.counters["fuzz.programs"] == 5
    assert tracer.counters["fuzz.mismatches"] == 0


@pytest.mark.slow
def test_coverage_map_accumulates_and_steers():
    config = CampaignConfig(seed=0, count=15, flow_every=5)
    report = FuzzCampaign(config).run()
    ops, geometries, paths = report.coverage.feature_counts()
    assert ops >= 15          # generated programs exercise most op kinds
    assert geometries == 4    # round-robin hits every geometry
    assert paths >= 1         # flow checks contribute scheduler paths
    assert report.flow_checks == 3


def test_steering_weights_target_uncovered_ops():
    coverage = CoverageMap()

    class FakeOutcome:
        op_kinds = ("ADD", "SUB")
        geometry = "none"
        flow_paths = ()
        flow_checked = False

    coverage.observe(FakeOutcome())
    weights = coverage.steering_weights(boost=9)
    assert weights is not None
    assert "+" not in weights and "-" not in weights
    assert weights["/"] == 9 and weights["*"] == 9
    # Staleness counts programs that contribute nothing new.
    coverage.observe(FakeOutcome())
    assert coverage.stale_streak == 1


def test_replay_mode_reports_entry_count(tmp_path):
    from repro.fuzz import write_entry
    from repro.fuzz.generator import FuzzProgram

    write_entry(tmp_path, FuzzProgram(
        name="entry", source="func main() -> int { return 3; }\n"))
    code, text = _run(replay=str(tmp_path))
    assert code == 0
    assert "replayed 1 corpus entries" in text

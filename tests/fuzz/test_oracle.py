"""The differential oracle: agreement passes, every injected bug is caught.

The oracle is only trustworthy if (a) it stays silent on correct code
and (b) it fires — with the right classification — when any single
layer is wrong.  The :data:`~repro.fuzz.oracle.KNOWN_BUGS` registry
exists exactly to prove (b) without shipping real bugs.
"""

import pytest

from repro.fuzz import (
    KNOWN_BUGS,
    OracleConfig,
    OracleStack,
    ProgramGenerator,
)
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracle import CACHE_GEOMETRIES


def _program(source, args=(), globals_init=None, name="t"):
    return FuzzProgram(name=name, source=source, args=tuple(args),
                       globals_init=dict(globals_init or {}))


SUB_PROGRAM = _program(
    "func main(a: int, b: int) -> int {\n"
    "    return (a - b);\n"
    "}\n", args=(17, 5))

SHR_PROGRAM = _program(
    "func main(a: int) -> int {\n"
    "    return (a >> 17);\n"
    "}\n", args=(1 << 20,))


@pytest.mark.parametrize("geometry", sorted(CACHE_GEOMETRIES))
def test_clean_program_agrees_under_every_geometry(geometry):
    outcome = OracleStack().check(SUB_PROGRAM, geometry=geometry)
    assert outcome.status == "ok"
    assert outcome.mismatches == []
    assert outcome.geometry == geometry
    assert "SUB" in outcome.op_kinds


def test_generated_programs_pass_the_full_stack():
    stack = OracleStack(OracleConfig(run_flow=True))
    program = ProgramGenerator(seed=0).generate(0)
    outcome = stack.check(program, geometry="default")
    assert outcome.status == "ok"
    assert outcome.flow_checked
    assert outcome.flow_paths  # scheduler-path coverage features


def test_iss_sub_swap_is_caught_as_iss_result_mismatch():
    stack = OracleStack(OracleConfig(inject_bug="iss-sub-swap"))
    outcome = stack.check(SUB_PROGRAM)
    assert outcome.failed
    assert "result.iss" in outcome.kinds


def test_compiled_sub_swap_is_caught_as_engine_mismatch():
    stack = OracleStack(OracleConfig(inject_bug="compiled-sub-swap"))
    outcome = stack.check(SUB_PROGRAM, geometry="default")
    assert outcome.failed
    assert any(kind.startswith("engine.") for kind in outcome.kinds)
    # The reference engine still matches the interpreter.
    assert "result.iss" not in outcome.kinds


def test_interp_shr_mask_is_caught():
    stack = OracleStack(OracleConfig(inject_bug="interp-shr-mask"))
    outcome = stack.check(SHR_PROGRAM)
    assert outcome.failed
    assert "result.iss" in outcome.kinds


@pytest.mark.slow
def test_every_known_bug_fires_within_a_small_campaign():
    generator = ProgramGenerator(seed=0)
    programs = [generator.generate(i) for i in range(30)]
    for bug_name in KNOWN_BUGS:
        stack = OracleStack(OracleConfig(inject_bug=bug_name))
        assert any(stack.check(p, geometry="default").failed
                   for p in programs), \
            f"bug {bug_name!r} survived 30 generated programs undetected"


def test_interpreter_fault_requires_iss_fault_agreement():
    faulting = _program(
        "func main(a: int) -> int {\n"
        "    return (1 / a);\n"
        "}\n", args=(0,))
    outcome = OracleStack().check(faulting)
    # All engines fault alike: not a mismatch, just uninteresting.
    assert outcome.status == "skip"
    assert outcome.mismatches == []


def test_compile_error_is_classified_not_raised():
    broken = _program("func main( -> int { return 0; }\n")
    outcome = OracleStack().check(broken)
    assert outcome.failed
    assert outcome.kinds == ("compile",)


def test_globals_final_state_is_compared():
    program = _program(
        "global G: int[8];\n"
        "func main(a: int) -> int {\n"
        "    G[3] = (G[3] - a);\n"
        "    return 0;\n"
        "}\n", args=(9,), globals_init={"G": [0, 0, 0, 100, 0, 0, 0, 0]})
    clean = OracleStack().check(program)
    assert clean.status == "ok"
    buggy = OracleStack(OracleConfig(inject_bug="iss-sub-swap"))
    outcome = buggy.check(program)
    assert outcome.failed
    assert "globals.iss" in outcome.kinds


def test_unknown_injected_bug_is_rejected_by_campaign():
    from repro.fuzz import CampaignConfig, FuzzCampaign

    with pytest.raises(ValueError, match="unknown --inject-bug"):
        FuzzCampaign(CampaignConfig(inject_bug="no-such-bug"))

"""The shrinker: preserves the mismatch classification, shrinks hard.

The acceptance bar from the subsystem's design: a deliberately injected
ISS bug must reduce to a reproducer of at most 15 source lines.
"""

import pytest

from repro.fuzz import (
    OracleConfig,
    OracleStack,
    ProgramGenerator,
    Shrinker,
    shrink_program,
)
from repro.fuzz.generator import FuzzProgram


def _buggy_stack():
    return OracleStack(OracleConfig(inject_bug="iss-sub-swap"))


def _first_failing(stack, limit=30):
    generator = ProgramGenerator(seed=0)
    for index in range(limit):
        program = generator.generate(index)
        outcome = stack.check(program)
        if outcome.failed:
            return program, outcome
    raise AssertionError("no failing program found")


def test_shrinks_injected_iss_bug_to_at_most_15_lines():
    stack = _buggy_stack()
    program, outcome = _first_failing(stack)
    result = Shrinker(stack).shrink(program, outcome=outcome)
    assert result.kind == "result.iss"
    assert result.reduced_lines <= 15
    assert result.reduced_lines < result.original_lines
    # The reduced program still reproduces the same classification ...
    final = stack.check(result.program)
    assert final.failed and result.kind in final.kinds
    # ... and is clean without the injected bug (it is a harness bug,
    # not a real one — exactly what a corpus entry must look like).
    assert OracleStack().check(result.program).status == "ok"


@pytest.mark.slow
def test_shrink_is_deterministic():
    first = shrink_program(_first_failing(_buggy_stack())[0], _buggy_stack())
    second = shrink_program(_first_failing(_buggy_stack())[0],
                            _buggy_stack())
    assert first.program.source == second.program.source
    assert first.program.args == second.program.args


def test_shrink_refuses_passing_programs():
    passing = FuzzProgram(name="ok",
                          source="func main() -> int { return 1; }\n")
    with pytest.raises(ValueError, match="does not fail"):
        Shrinker(_buggy_stack()).shrink(passing)


@pytest.mark.slow
def test_attempt_budget_is_respected():
    stack = _buggy_stack()
    program, outcome = _first_failing(stack)
    shrinker = Shrinker(stack, max_attempts=10)
    result = shrinker.shrink(program, outcome=outcome)
    assert result.attempts <= 10
    # Even a tiny budget must not lose the failure.
    final = stack.check(result.program)
    assert final.failed


def test_shrunken_globals_init_only_covers_surviving_globals():
    stack = _buggy_stack()
    program, outcome = _first_failing(stack)
    result = Shrinker(stack).shrink(program, outcome=outcome)
    import re
    surviving = set(re.findall(r"^global (\w+)", result.program.source,
                               re.MULTILINE))
    assert set(result.program.globals_init) <= surviving

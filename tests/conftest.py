"""Shared fixtures for the test suite."""

import pytest

from repro.tech import cmos6_library, default_resource_sets


@pytest.fixture(scope="session")
def library():
    return cmos6_library()


@pytest.fixture(scope="session")
def resource_sets():
    return default_resource_sets()


DOT_SOURCE = """
const N = 8;
global out: int[N];

func dot(a: int[N], b: int[N], n: int) -> int {
    var s: int = 0;
    for i in 0 .. n {
        s = s + a[i] * b[i];
    }
    return s;
}

func main() -> int {
    var a: int[N];
    var b: int[N];
    for i in 0 .. N {
        a[i] = i;
        b[i] = 2 * i + 1;
    }
    var r: int = dot(a, b, N);
    for i in 0 .. N {
        if a[i] % 2 == 0 {
            out[i] = a[i];
        } else {
            out[i] = -a[i];
        }
    }
    return r;
}
"""


@pytest.fixture()
def dot_source():
    return DOT_SOURCE


@pytest.fixture()
def dot_program():
    from repro.lang import compile_source
    return compile_source(DOT_SOURCE, name="dot")

"""CDFG interpreter unit tests."""

import pytest

from repro.lang import Interpreter, InterpError, compile_source
from repro.lang.interp import wrap32


def run(source: str, *args, globals_init=None, entry="main"):
    program = compile_source(source, entry=entry)
    interp = Interpreter(program)
    for name, values in (globals_init or {}).items():
        interp.set_global(name, values)
    result = interp.run(*args)
    return result, interp


# ---------------------------------------------------------------------------
# wrap32 semantics
# ---------------------------------------------------------------------------

def test_wrap32_identity_in_range():
    assert wrap32(123) == 123
    assert wrap32(-123) == -123


def test_wrap32_overflow():
    assert wrap32(2**31) == -2**31
    assert wrap32(2**32 + 5) == 5
    assert wrap32(-2**31 - 1) == 2**31 - 1


# ---------------------------------------------------------------------------
# Arithmetic semantics
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("expr,expected", [
    ("7 + 5", 12),
    ("7 - 5", 2),
    ("7 * 5", 35),
    ("7 / 2", 3),
    ("(0 - 7) / 2", -3),       # truncation toward zero (C semantics)
    ("7 % 3", 1),
    ("(0 - 7) % 3", -1),       # sign follows dividend
    ("6 & 3", 2),
    ("6 | 3", 7),
    ("6 ^ 3", 5),
    ("~0", -1),
    ("1 << 4", 16),
    ("256 >> 4", 16),
    ("3 < 4", 1),
    ("4 <= 4", 1),
    ("5 > 4", 1),
    ("5 >= 6", 0),
    ("5 == 5", 1),
    ("5 != 5", 0),
    ("2 && 0", 0),
    ("2 && 3", 1),
    ("0 || 0", 0),
    ("0 || 9", 1),
    ("!7", 0),
    ("!0", 1),
    ("-(3)", -3),
])
def test_expression(expr, expected):
    result, _ = run(f"func main() -> int {{ return {expr}; }}")
    assert result == expected


def test_mul_wraps_to_32_bits():
    result, _ = run("func main() -> int { return 0x10000 * 0x10000; }")
    assert result == 0


def test_shift_amount_masked_to_5_bits():
    result, _ = run("func main() -> int { return 1 << 33; }")
    assert result == 2


def test_srl_is_logical_shift():
    result, _ = run("func main() -> int { return (0 - 1) >> 28; }")
    assert result == 15


def test_division_by_zero_raises():
    with pytest.raises(InterpError):
        run("func main(x: int) -> int { return 1 / x; }", 0)


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------

def test_while_loop_sum():
    src = """
    func main(n: int) -> int {
        var s: int = 0;
        var i: int = 0;
        while i < n { s = s + i; i = i + 1; }
        return s;
    }
    """
    result, _ = run(src, 10)
    assert result == 45


def test_for_loop_sum():
    result, _ = run(
        "func main(n: int) -> int { var s: int = 0;"
        " for i in 0 .. n { s = s + i; } return s; }", 100)
    assert result == 4950


def test_empty_for_range():
    result, _ = run(
        "func main() -> int { var s: int = 7;"
        " for i in 5 .. 5 { s = 0; } return s; }")
    assert result == 7


def test_reverse_range_does_not_execute():
    result, _ = run(
        "func main() -> int { var s: int = 7;"
        " for i in 5 .. 2 { s = 0; } return s; }")
    assert result == 7


def test_break():
    src = """
    func main() -> int {
        var i: int = 0;
        while 1 { i = i + 1; if i == 5 { break; } }
        return i;
    }
    """
    result, _ = run(src)
    assert result == 5


def test_continue():
    src = """
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n { if i % 2 == 0 { continue; } s = s + i; }
        return s;
    }
    """
    result, _ = run(src, 10)
    assert result == 1 + 3 + 5 + 7 + 9


def test_nested_break_only_exits_inner():
    src = """
    func main() -> int {
        var s: int = 0;
        for i in 0 .. 3 {
            for j in 0 .. 10 { if j == 2 { break; } s = s + 1; }
        }
        return s;
    }
    """
    result, _ = run(src)
    assert result == 6


# ---------------------------------------------------------------------------
# Functions, arrays and globals
# ---------------------------------------------------------------------------

def test_recursion():
    src = """
    func fib(n: int) -> int {
        if n < 2 { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    func main(n: int) -> int { return fib(n); }
    """
    result, _ = run(src, 10)
    assert result == 55


def test_arrays_passed_by_reference():
    src = """
    func fill(a: int[4]) -> void { for i in 0 .. 4 { a[i] = i * 10; } }
    func main() -> int {
        var b: int[4];
        fill(b);
        return b[3];
    }
    """
    result, _ = run(src)
    assert result == 30


def test_local_arrays_fresh_per_activation():
    src = """
    func bump(x: int) -> int {
        var a: int[2];
        a[0] = a[0] + x;
        return a[0];
    }
    func main() -> int { return bump(5) + bump(7); }
    """
    result, _ = run(src)
    assert result == 12  # both activations saw zero-initialized arrays


def test_global_arrays_persist():
    src = """
    global g: int[4];
    func main() -> int {
        g[1] = g[1] + 3;
        return g[1];
    }
    """
    result, interp = run(src, globals_init={"g": [10, 20, 30, 40]})
    assert result == 23
    assert interp.get_global("g") == [10, 23, 30, 40]


def test_scalar_global_roundtrip():
    src = """
    global counter: int;
    func tick() -> void { counter = counter + 1; }
    func main() -> int { tick(); tick(); tick(); return counter; }
    """
    result, _ = run(src)
    assert result == 3


def test_out_of_range_load_raises():
    with pytest.raises(InterpError):
        run("func main(i: int) -> int { var a: int[4]; return a[i]; }", 9)


def test_out_of_range_store_raises():
    with pytest.raises(InterpError):
        run("func main(i: int) -> int { var a: int[4]; a[i] = 1; return 0; }",
            -1)


def test_fuel_limit():
    program = compile_source("func main() -> int { while 1 { } return 0; }")
    interp = Interpreter(program, max_steps=1000)
    with pytest.raises(InterpError):
        interp.run()


def test_set_unknown_global_raises():
    program = compile_source("func main() -> int { return 0; }")
    with pytest.raises(KeyError):
        Interpreter(program).set_global("nope", [1])


def test_wrong_global_length_raises():
    program = compile_source(
        "global g: int[4]; func main() -> int { return g[0]; }")
    with pytest.raises(ValueError):
        Interpreter(program).set_global("g", [1, 2])


# ---------------------------------------------------------------------------
# Profiling
# ---------------------------------------------------------------------------

def test_block_counts_match_trip_counts():
    src = """
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n { s = s + i; }
        return s;
    }
    """
    program = compile_source(src)
    interp = Interpreter(program)
    interp.run(8)
    cdfg = program.cdfgs["main"]
    ex = interp.profile.executions_of("main", cdfg)
    header, body = cdfg.natural_loops()[0]
    # header runs trips+1 times; the body block exactly `trips` times.
    assert ex[header] == 9
    body_blocks = [b for b in body if b != header]
    assert any(ex[b] == 8 for b in body_blocks)


def test_call_counts():
    src = """
    func leaf() -> int { return 1; }
    func main() -> int {
        var s: int = 0;
        for i in 0 .. 5 { s = s + leaf(); }
        return s;
    }
    """
    _, interp = run(src)
    assert interp.profile.call_counts["leaf"] == 5
    assert interp.profile.call_counts["main"] == 1


def test_memory_trace_hook():
    events = []
    program = compile_source(
        "global g: int[4];"
        "func main() -> int { g[1] = 5; return g[1]; }")
    interp = Interpreter(program, trace_hook=events.append)
    interp.run()
    assert (True, "g", 1) in events
    assert (False, "g", 1) in events

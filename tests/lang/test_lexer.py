"""Lexer unit tests."""

import pytest

from repro.lang.lexer import Lexer, LexError
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in Lexer(source).tokenize()]


def test_empty_source_yields_eof():
    assert kinds("") == [TokenKind.EOF]


def test_whitespace_only():
    assert kinds("  \t\n\r  ") == [TokenKind.EOF]


def test_comment_to_end_of_line():
    assert kinds("# a comment\n") == [TokenKind.EOF]


def test_comment_then_token():
    toks = Lexer("# c\nfunc").tokenize()
    assert toks[0].kind is TokenKind.KW_FUNC
    assert toks[0].line == 2


def test_decimal_literal():
    tok = Lexer("12345").tokenize()[0]
    assert tok.kind is TokenKind.INT
    assert tok.value == 12345


def test_hex_literal():
    tok = Lexer("0xFF").tokenize()[0]
    assert tok.value == 255


def test_hex_literal_lowercase_x():
    assert Lexer("0x10").tokenize()[0].value == 16


def test_malformed_hex_raises():
    with pytest.raises(LexError):
        Lexer("0x").tokenize()


def test_identifier_with_underscores_and_digits():
    tok = Lexer("_foo_2bar").tokenize()[0]
    assert tok.kind is TokenKind.IDENT
    assert tok.text == "_foo_2bar"


def test_digit_prefixed_identifier_rejected():
    with pytest.raises(LexError):
        Lexer("2abc").tokenize()


@pytest.mark.parametrize("text,kind", [
    ("func", TokenKind.KW_FUNC),
    ("var", TokenKind.KW_VAR),
    ("const", TokenKind.KW_CONST),
    ("global", TokenKind.KW_GLOBAL),
    ("if", TokenKind.KW_IF),
    ("else", TokenKind.KW_ELSE),
    ("while", TokenKind.KW_WHILE),
    ("for", TokenKind.KW_FOR),
    ("in", TokenKind.KW_IN),
    ("return", TokenKind.KW_RETURN),
    ("break", TokenKind.KW_BREAK),
    ("continue", TokenKind.KW_CONTINUE),
    ("int", TokenKind.KW_INT),
    ("void", TokenKind.KW_VOID),
])
def test_keywords(text, kind):
    assert kinds(text)[0] is kind


def test_keyword_prefix_is_identifier():
    tok = Lexer("iffy").tokenize()[0]
    assert tok.kind is TokenKind.IDENT


@pytest.mark.parametrize("text,kind", [
    ("->", TokenKind.ARROW),
    ("..", TokenKind.DOTDOT),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("&&", TokenKind.ANDAND),
    ("||", TokenKind.OROR),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
])
def test_two_char_operators(text, kind):
    assert kinds(text)[0] is kind


def test_two_char_beats_one_char():
    # '<=' must not lex as '<' '='.
    assert kinds("<=")[:1] == [TokenKind.LE]


def test_minus_then_arrow_disambiguation():
    assert kinds("- ->")[:2] == [TokenKind.MINUS, TokenKind.ARROW]


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as err:
        Lexer("\n  $").tokenize()
    assert err.value.line == 2
    assert err.value.col == 3


def test_token_positions():
    toks = Lexer("a\n  b").tokenize()
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_full_statement_token_stream():
    toks = kinds("x = a[i] + 3;")
    assert toks == [
        TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.IDENT,
        TokenKind.LBRACKET, TokenKind.IDENT, TokenKind.RBRACKET,
        TokenKind.PLUS, TokenKind.INT, TokenKind.SEMI, TokenKind.EOF,
    ]

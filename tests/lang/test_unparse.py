"""The unparser must emit source that parses back to the same AST.

This round-trip is what the shrinker stands on: every reduction edits the
AST and re-emits text, so ``parse(unparse(parse(s)))`` must be
structurally identical to ``parse(s)`` (``Node.line`` is excluded from
dataclass equality, so plain ``==`` is exactly "structurally identical").
"""

import pytest

from repro.apps import ALL_APPS
from repro.lang import compile_source, parse_program, unparse_module
from repro.lang.unparse import unparse_expr


@pytest.mark.parametrize("app_name", sorted(ALL_APPS))
def test_round_trip_is_structurally_identical_for_apps(app_name):
    source = ALL_APPS[app_name]().source
    module = parse_program(source)
    again = parse_program(unparse_module(module))
    assert again == module


def test_round_trip_preserves_semantics():
    source = """
    global G: int[8];
    func helper(ap: int[8], x: int) -> int {
        var total: int = 0;
        for i in 0 .. 8 {
            ap[i] = (ap[i] + x);
            total = total + ap[i];
        }
        return total;
    }
    func main(a: int) -> int {
        var acc: int = 0;
        var k: int = 6;
        while k > 0 {
            k = k - 1;
            if k % 2 == 0 {
                continue;
            }
            acc = acc + helper(G, a + k);
        }
        return acc;
    }
    """
    from repro.lang import Interpreter

    emitted = unparse_module(parse_program(source))
    init = list(range(8))
    results = []
    for text in (source, emitted):
        interp = Interpreter(compile_source(text, name="rt"))
        interp.set_global("G", list(init))
        results.append((interp.run(9), interp.get_global("G")))
    assert results[0] == results[1]


def test_unary_and_precedence_survive_round_trip():
    source = ("func main(a: int, b: int) -> int {\n"
              "    return -a * (b + 2) % 7 ^ ~b << 1 != 0 && a > b || !b;\n"
              "}\n")
    module = parse_program(source)
    again = parse_program(unparse_module(module))
    assert again == module


def test_void_function_and_bare_return_round_trip():
    source = ("global S: int;\n"
              "func poke(v: int) -> void {\n"
              "    if v < 0 {\n"
              "        return;\n"
              "    }\n"
              "    S = v;\n"
              "}\n"
              "func main() -> int {\n"
              "    poke(5);\n"
              "    return S;\n"
              "}\n")
    module = parse_program(source)
    assert parse_program(unparse_module(module)) == module


def test_const_declarations_fold_but_still_emit():
    module = parse_program("const N = 4;\n"
                           "func main() -> int { return N * N; }\n")
    text = unparse_module(module)
    assert "const N = 4;" in text
    # Const uses are folded to literals at parse time, so the round-trip
    # emits the folded form — and still evaluates identically.
    assert "(4 * 4)" in text
    assert parse_program(text) == module


def test_unparse_expr_rejects_unknown_nodes():
    with pytest.raises(TypeError):
        unparse_expr("not an expression")

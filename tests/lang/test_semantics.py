"""Semantic checker unit tests."""

import pytest

from repro.lang.parser import parse_program
from repro.lang.semantics import SemanticError, check_program


def check(source: str):
    return check_program(parse_program(source))


def test_valid_program_returns_signatures():
    sigs = check("func f(a: int[4], n: int) -> int { return n; }")
    assert sigs["f"].param_is_array == (True, False)
    assert sigs["f"].returns_value


def test_duplicate_function():
    with pytest.raises(SemanticError):
        check("func f() { } func f() { }")


def test_duplicate_parameter():
    with pytest.raises(SemanticError):
        check("func f(a: int, a: int) { }")


def test_duplicate_global():
    with pytest.raises(SemanticError):
        check("global g: int[4]; global g: int;")


def test_duplicate_local():
    with pytest.raises(SemanticError):
        check("func f() { var x: int = 0; var x: int = 1; }")


def test_use_of_undeclared_variable():
    with pytest.raises(SemanticError):
        check("func f() -> int { return x; }")


def test_assignment_to_undeclared():
    with pytest.raises(SemanticError):
        check("func f() { x = 3; }")


def test_whole_array_assignment_rejected():
    with pytest.raises(SemanticError):
        check("func f(a: int[4]) { a = 3; }")


def test_array_used_as_scalar_rejected():
    with pytest.raises(SemanticError):
        check("func f(a: int[4]) -> int { return a + 1; }")


def test_indexing_a_scalar_rejected():
    with pytest.raises(SemanticError):
        check("func f(x: int) -> int { return x[0]; }")


def test_store_to_scalar_rejected():
    with pytest.raises(SemanticError):
        check("func f(x: int) { x[0] = 1; }")


def test_globals_visible_in_functions():
    check("global g: int[4]; func f() -> int { return g[0]; }")


def test_scalar_global_read_and_write():
    check("global s: int; func f() { s = s + 1; }")


def test_missing_return_value():
    with pytest.raises(SemanticError):
        check("func f() -> int { return; }")


def test_void_returning_value_rejected():
    with pytest.raises(SemanticError):
        check("func f() -> void { return 3; }")


def test_break_outside_loop():
    with pytest.raises(SemanticError):
        check("func f() { break; }")


def test_continue_outside_loop():
    with pytest.raises(SemanticError):
        check("func f() { continue; }")


def test_break_inside_nested_if_in_loop_ok():
    check("func f() { while 1 { if 1 { break; } } }")


def test_call_unknown_function():
    with pytest.raises(SemanticError):
        check("func f() { g(); }")


def test_call_arity_mismatch():
    with pytest.raises(SemanticError):
        check("func g(x: int) { } func f() { g(); }")


def test_void_call_in_expression_rejected():
    with pytest.raises(SemanticError):
        check("func g() -> void { } func f() -> int { return g(); }")


def test_int_call_as_statement_allowed():
    check("func g() -> int { return 1; } func f() { g(); }")


def test_array_argument_must_be_array_name():
    with pytest.raises(SemanticError):
        check("func g(a: int[4]) { } func f() { g(3); }")


def test_scalar_argument_cannot_be_array():
    with pytest.raises(SemanticError):
        check("func g(x: int) { } func f(a: int[4]) { g(a); }")


def test_array_argument_passes():
    check("func g(a: int[4]) { } func f(b: int[4]) { g(b); }")


def test_loop_variable_implicitly_declared():
    check("func f() -> int { for i in 0 .. 4 { } return i; }")


def test_loop_variable_reuse_allowed():
    check("func f() { for i in 0 .. 4 { } for i in 0 .. 4 { } }")


def test_loop_variable_cannot_be_array():
    with pytest.raises(SemanticError):
        check("func f(a: int[4]) { for a in 0 .. 4 { } }")


def test_non_call_expression_statement_impossible_via_parser():
    # The grammar only allows calls as expression statements, so this is a
    # parse error upstream, not a semantic one — documents the division.
    from repro.lang.parser import ParseError
    with pytest.raises(ParseError):
        check("func f() { 1 + 2; }")

"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import ParseError, parse_program


def parse_func(body: str, params: str = "", ret: str = "-> int") -> ast.FuncDecl:
    module = parse_program(f"func f({params}) {ret} {{ {body} }}")
    return module.funcs[0]


def first_stmt(body: str) -> ast.Stmt:
    return parse_func(body).body[0]


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

def test_empty_module():
    module = parse_program("")
    assert module.funcs == [] and module.consts == [] and module.globals_ == []


def test_const_declaration_folds():
    module = parse_program("const N = 4 * 8 + 1;")
    assert module.consts[0].name == "N"
    assert module.consts[0].value == 33


def test_const_references_earlier_const():
    module = parse_program("const A = 3; const B = A * A;")
    assert module.consts[1].value == 9


def test_duplicate_const_rejected():
    with pytest.raises(ParseError):
        parse_program("const A = 1; const A = 2;")


def test_const_in_array_size():
    module = parse_program("const N = 5; global g: int[N * 2];")
    assert module.globals_[0].array_size == 10


def test_non_positive_array_size_rejected():
    with pytest.raises(ParseError):
        parse_program("global g: int[0];")


def test_global_scalar():
    module = parse_program("global x: int;")
    assert module.globals_[0].array_size is None


def test_function_signature():
    func = parse_func("return n;", params="a: int[4], n: int")
    assert func.params[0].array_size == 4
    assert func.params[1].array_size is None
    assert func.returns_value


def test_void_function():
    func = parse_func("return;", ret="-> void")
    assert not func.returns_value


def test_no_arrow_means_void():
    module = parse_program("func f() { }")
    assert not module.funcs[0].returns_value


def test_top_level_junk_rejected():
    with pytest.raises(ParseError):
        parse_program("x = 3;")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def test_var_decl_with_init():
    stmt = first_stmt("var x: int = 3; return x;")
    assert isinstance(stmt, ast.VarDecl)
    assert isinstance(stmt.init, ast.IntLit)


def test_array_var_decl():
    stmt = first_stmt("var buf: int[16]; return 0;")
    assert stmt.array_size == 16


def test_array_initializer_rejected():
    with pytest.raises(ParseError):
        parse_func("var buf: int[4] = 0; return 0;")


def test_assignment():
    stmt = first_stmt("x = 1; return 0;")
    assert isinstance(stmt, ast.Assign)


def test_array_store():
    stmt = first_stmt("a[i] = v; return 0;")
    assert isinstance(stmt, ast.StoreStmt)
    assert stmt.base == "a"


def test_if_else():
    stmt = first_stmt("if x { y = 1; } else { y = 2; } return y;")
    assert isinstance(stmt, ast.If)
    assert len(stmt.then_body) == 1
    assert len(stmt.else_body) == 1


def test_else_if_chains():
    stmt = first_stmt("if a { } else if b { } else { } return 0;")
    assert isinstance(stmt.else_body[0], ast.If)


def test_while():
    stmt = first_stmt("while x > 0 { x = x - 1; } return x;")
    assert isinstance(stmt, ast.While)


def test_for_range():
    stmt = first_stmt("for i in 0 .. 10 { } return 0;")
    assert isinstance(stmt, ast.ForRange)
    assert stmt.var == "i"


def test_break_and_continue():
    func = parse_func("while 1 { break; continue; } return 0;")
    loop = func.body[0]
    assert isinstance(loop.body[0], ast.Break)
    assert isinstance(loop.body[1], ast.Continue)


def test_call_statement():
    stmt = first_stmt("g(); return 0;")
    assert isinstance(stmt, ast.ExprStmt)
    assert isinstance(stmt.expr, ast.Call)


def test_unterminated_block():
    with pytest.raises(ParseError):
        parse_program("func f() -> int { return 0;")


def test_missing_semicolon():
    with pytest.raises(ParseError):
        parse_func("x = 1 return 0;")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def _expr(text: str) -> ast.Expr:
    stmt = first_stmt(f"x = {text}; return 0;")
    return stmt.value


def test_precedence_mul_over_add():
    expr = _expr("1 + 2 * 3")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_precedence_shift_below_add():
    expr = _expr("1 << 2 + 3")
    # '+' binds tighter than '<<'
    assert expr.op == "<<"
    assert expr.right.op == "+"


def test_precedence_compare_below_shift():
    expr = _expr("a << 1 < b")
    assert expr.op == "<"


def test_precedence_bitand_below_compare():
    expr = _expr("a == b & c == d")
    assert expr.op == "&"
    assert expr.left.op == "=="


def test_precedence_logical_or_lowest():
    expr = _expr("a && b || c && d")
    assert expr.op == "||"


def test_left_associativity():
    expr = _expr("a - b - c")
    assert expr.op == "-"
    assert expr.left.op == "-"


def test_parentheses_override():
    expr = _expr("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_unary_operators_nest():
    expr = _expr("-~!a")
    assert expr.op == "-"
    assert expr.operand.op == "~"
    assert expr.operand.operand.op == "!"


def test_index_expression():
    expr = _expr("a[i + 1]")
    assert isinstance(expr, ast.Index)
    assert expr.index.op == "+"


def test_call_with_args():
    expr = _expr("g(1, x, a[0])")
    assert isinstance(expr, ast.Call)
    assert len(expr.args) == 3


def test_const_folded_in_expression_position():
    module = parse_program(
        "const K = 7; func f() -> int { return K + 1; }")
    ret = module.funcs[0].body[0]
    assert isinstance(ret.value.left, ast.IntLit)
    assert ret.value.left.value == 7


def test_const_division_truncates_toward_zero():
    module = parse_program("const A = -7 / 2;")
    assert module.consts[0].value == -3


def test_const_division_by_zero():
    with pytest.raises(ZeroDivisionError):
        parse_program("const A = 1 / 0;")

"""Lowering (AST -> CDFG) unit tests."""

import pytest

from repro.ir.ops import OpKind
from repro.lang import compile_source


def lower(source: str, func: str = "f"):
    return compile_source(source, entry="f").cdfgs[func]


def ops_of(cdfg):
    return list(cdfg.all_ops())


def kinds_of(cdfg):
    return [op.kind for op in cdfg.all_ops()]


def test_straight_line_lowering():
    cdfg = lower("func f(x: int) -> int { var y: int = x + 1; return y; }")
    cdfg.verify()
    assert OpKind.ADD in kinds_of(cdfg)
    assert OpKind.RETURN in kinds_of(cdfg)
    assert len(cdfg.blocks) == 1


def test_if_creates_diamond():
    cdfg = lower("func f(x: int) -> int { var y: int = 0; "
                 "if x { y = 1; } else { y = 2; } return y; }")
    cdfg.verify()
    # entry, then, else, merge
    assert len(cdfg.blocks) == 4
    branch_blocks = [b for b in cdfg.blocks.values()
                     if b.terminator and b.terminator.kind is OpKind.BRANCH]
    assert len(branch_blocks) == 1
    taken, fall = cdfg.branch_targets(branch_blocks[0].name)
    assert taken is not None and fall is not None


def test_if_without_else_false_edge_to_merge():
    cdfg = lower("func f(x: int) -> int { var y: int = 0; "
                 "if x { y = 1; } return y; }")
    cdfg.verify()
    assert len(cdfg.blocks) == 3


def test_while_loop_structure():
    cdfg = lower("func f(n: int) -> int { var i: int = 0; "
                 "while i < n { i = i + 1; } return i; }")
    cdfg.verify()
    loops = cdfg.natural_loops()
    assert len(loops) == 1


def test_for_loop_structure():
    cdfg = lower("func f(n: int) -> int { var s: int = 0; "
                 "for i in 0 .. n { s = s + i; } return s; }")
    cdfg.verify()
    loops = cdfg.natural_loops()
    assert len(loops) == 1
    header, body = loops[0]
    # for-loop: header, body, latch all inside the loop
    assert len(body) == 3


def test_for_bound_evaluated_once():
    cdfg = lower("func f(n: int) -> int { var s: int = 0; "
                 "for i in 0 .. n * 2 { s = s + 1; } return s; }")
    # the bound multiply lives in the preheader (entry), not the loop
    loops = cdfg.natural_loops()
    _, body = loops[0]
    loop_kinds = [op.kind for name in body for op in cdfg.blocks[name].ops]
    assert OpKind.MUL not in loop_kinds


def test_break_jumps_to_exit():
    cdfg = lower("func f() -> int { var i: int = 0; while 1 { "
                 "i = i + 1; if i > 3 { break; } } return i; }")
    cdfg.verify()


def test_continue_jumps_to_latch():
    cdfg = lower("func f(n: int) -> int { var s: int = 0; for i in 0 .. n { "
                 "if i % 2 { continue; } s = s + i; } return s; }")
    cdfg.verify()


def test_nested_loops():
    cdfg = lower("func f(n: int) -> int { var s: int = 0; "
                 "for i in 0 .. n { for j in 0 .. n { s = s + 1; } } "
                 "return s; }")
    cdfg.verify()
    assert len(cdfg.natural_loops()) == 2


def test_unreachable_code_pruned():
    cdfg = lower("func f() -> int { return 1; }")
    cdfg.verify()
    assert len(cdfg.blocks) == 1


def test_implicit_return_for_void():
    cdfg = lower("func f() { }")
    returns = [op for op in cdfg.all_ops() if op.kind is OpKind.RETURN]
    assert len(returns) == 1
    assert returns[0].operands == ()


def test_implicit_zero_return_for_int():
    cdfg = lower("func f() -> int { var x: int = 1; }")
    returns = [op for op in cdfg.all_ops() if op.kind is OpKind.RETURN]
    assert len(returns) == 1
    assert len(returns[0].operands) == 1


def test_local_array_declared_in_cdfg():
    cdfg = lower("func f() -> int { var buf: int[32]; buf[0] = 1; "
                 "return buf[0]; }")
    assert cdfg.arrays["buf"] == 32


def test_scalar_global_lowered_to_memory():
    program = compile_source(
        "global s: int; func f() { s = s + 1; }", entry="f")
    cdfg = program.cdfgs["f"]
    kinds = kinds_of(cdfg)
    assert OpKind.LOAD in kinds and OpKind.STORE in kinds
    assert program.global_arrays["__g_s"] == 1


def test_call_lowering_separates_scalar_and_array_args():
    program = compile_source(
        "func g(a: int[4], x: int) -> int { return a[x]; }"
        "func f(b: int[4]) -> int { return g(b, 2); }", entry="f")
    calls = [op for op in program.cdfgs["f"].all_ops()
             if op.kind is OpKind.CALL]
    assert len(calls) == 1
    assert calls[0].array_args == ("b",)
    assert len(calls[0].operands) == 1


def test_logical_and_lowered_branchless():
    cdfg = lower("func f(a: int, b: int) -> int { return a && b; }")
    kinds = kinds_of(cdfg)
    assert OpKind.AND in kinds
    # operands are normalized to booleans with NE
    assert kinds.count(OpKind.NE) == 2


def test_logical_not_lowered_to_eq_zero():
    cdfg = lower("func f(a: int) -> int { return !a; }")
    assert OpKind.EQ in kinds_of(cdfg)


def test_comparison_operands_not_renormalized():
    cdfg = lower("func f(a: int, b: int) -> int { return (a < b) && (a > 0); }")
    kinds = kinds_of(cdfg)
    # comparisons already produce 0/1: no extra NE
    assert OpKind.NE not in kinds


def test_branch_condition_feeds_terminator():
    cdfg = lower("func f(x: int) -> int { if x > 2 { return 1; } return 0; }")
    for name, block in cdfg.blocks.items():
        term = block.terminator
        if term is not None and term.kind is OpKind.BRANCH:
            cond = term.operands[0]
            defs = [op for op in block.body if op.result == cond]
            assert defs and defs[0].kind is OpKind.GT
            return
    pytest.fail("no branch block found")

"""Golden-value regression tests for the optimised simulation substrate.

``fixtures/<app>.json`` freezes the observable outputs of the full
low-power flow — SimResult counters and per-block attribution, per-cache
CacheStats, memory/bus word counters, and the gate-level energy breakdown
— as captured from the *reference* (pre-optimisation) models.  The
optimised fast paths (compiled ISS engine, flat-array cache, cached
gate-energy evaluator) must reproduce every value exactly: integers
equal, floats bit-equal (fixtures round-trip through ``repr`` so JSON
preserves them losslessly).

Regenerate fixtures only on an *intentional* model change::

    PYTHONPATH=src python tools/capture_golden.py
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from capture_golden import FIXTURE_DIR, capture  # noqa: E402

from repro.apps import ALL_APPS  # noqa: E402

APP_NAMES = sorted(ALL_APPS)

# Each case runs a full flow twice (reference capture vs optimised run);
# the whole matrix belongs to the slow tier (docs/TESTING.md).
pytestmark = pytest.mark.slow


def _flatten(prefix, value, out):
    if isinstance(value, dict):
        for key in value:
            _flatten(f"{prefix}.{key}", value[key], out)
    else:
        out[prefix] = value


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_flow_reproduces_golden_fixture(app_name):
    fixture_path = FIXTURE_DIR / f"{app_name}.json"
    want = json.loads(fixture_path.read_text(encoding="utf-8"))
    got = capture(app_name)
    if got != want:  # flatten first so the diff names the exact field
        got_flat, want_flat = {}, {}
        _flatten(app_name, got, got_flat)
        _flatten(app_name, want, want_flat)
        diffs = [f"{key}: got={got_flat.get(key)!r} "
                 f"want={want_flat.get(key)!r}"
                 for key in sorted(set(got_flat) | set(want_flat))
                 if got_flat.get(key) != want_flat.get(key)]
        pytest.fail("golden mismatch (bit-exactness violated):\n  "
                    + "\n  ".join(diffs[:40]))


def test_fixtures_exist_for_every_app():
    for app_name in APP_NAMES:
        assert (FIXTURE_DIR / f"{app_name}.json").is_file(), (
            f"missing golden fixture for {app_name}; run "
            "PYTHONPATH=src python tools/capture_golden.py")

"""Application-suite tests: every app compiles, runs on both execution
engines with identical results, and exposes hardware-mappable clusters."""

import pytest

from repro.apps import ALL_APPS, app_by_name, make_all_apps
from repro.cluster import decompose_into_clusters
from repro.isa.image import link_program
from repro.isa.simulator import Simulator
from repro.lang import Interpreter
from repro.tech import cmos6_library


APP_NAMES = list(ALL_APPS)


def test_registry_contains_the_six_paper_apps():
    assert APP_NAMES == ["3d", "MPG", "ckey", "digs", "engine", "trick"]


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        app_by_name("quake")


def test_make_all_apps_instantiates_each():
    apps = make_all_apps()
    assert [a.name for a in apps] == APP_NAMES


@pytest.mark.parametrize("name", APP_NAMES)
def test_scale_must_be_positive(name):
    with pytest.raises(ValueError):
        ALL_APPS[name](0)


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_compiles(name):
    program = app_by_name(name).compile()
    assert "main" in program.cdfgs
    for cdfg in program.cdfgs.values():
        cdfg.verify()


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_globals_match_declared_sizes(name):
    app = app_by_name(name)
    program = app.compile()
    for global_name, values in app.globals_init.items():
        assert program.global_arrays[global_name] == len(values)


@pytest.mark.parametrize("name", APP_NAMES)
def test_interpreter_and_simulator_agree(name):
    app = app_by_name(name)
    program = app.compile()

    interp = Interpreter(program)
    for gname, values in app.globals_init.items():
        interp.set_global(gname, values)
    expected = interp.run(*app.args)

    sim = Simulator(link_program(program), cmos6_library())
    for gname, values in app.globals_init.items():
        sim.set_global(gname, values)
    result = sim.run(*app.args)
    assert result.result == expected


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_result_nonzero(name):
    """Checksums must be non-trivial so functional mismatches are visible."""
    app = app_by_name(name)
    program = app.compile()
    interp = Interpreter(program)
    for gname, values in app.globals_init.items():
        interp.set_global(gname, values)
    assert interp.run(*app.args) != 0


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_has_loop_clusters(name):
    program = app_by_name(name).compile()
    clusters = decompose_into_clusters(program)
    assert any(c.kind == "loop" for c in clusters)


def test_ckey_models_no_caches():
    assert app_by_name("ckey").model_caches is False


def test_other_apps_model_caches():
    for name in APP_NAMES:
        if name != "ckey":
            assert app_by_name(name).model_caches


def test_trick_tables_exceed_local_buffers():
    library = cmos6_library()
    program = app_by_name("trick").compile()
    big = [s for s, size in program.global_arrays.items()
           if size > library.asic_local_buffer_words]
    assert set(big) >= {"warp_map", "src", "dst"}


def test_digs_image_fits_local_buffers():
    library = cmos6_library()
    program = app_by_name("digs").compile()
    assert all(size <= library.asic_local_buffer_words
               for size in program.global_arrays.values())


def test_scaling_grows_workload():
    small = app_by_name("engine", scale=1)
    large = app_by_name("engine", scale=2)
    assert len(large.globals_init["rpm"]) == 2 * len(small.globals_init["rpm"])

"""Input-generator tests."""

import pytest

from repro.apps.inputs import (
    Lcg,
    noise,
    permutation,
    sensor_trace,
    smooth_image,
    textured_image,
    vertex_cloud,
)


def test_lcg_deterministic():
    a = Lcg(42)
    b = Lcg(42)
    assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]


def test_lcg_below_bound():
    rng = Lcg(7)
    values = [rng.below(13) for _ in range(200)]
    assert all(0 <= v < 13 for v in values)
    assert len(set(values)) > 5  # actually varies


def test_lcg_below_invalid():
    with pytest.raises(ValueError):
        Lcg().below(0)


def test_noise_range_and_length():
    values = noise(100, 50, seed=3)
    assert len(values) == 100
    assert all(0 <= v < 50 for v in values)


def test_smooth_image_is_8bit():
    img = smooth_image(16, 16)
    assert len(img) == 256
    assert all(0 <= p < 256 for p in img)


def test_smooth_image_locally_smooth():
    img = smooth_image(32, 32)
    jumps = [abs(img[i + 1] - img[i]) for i in range(30)]
    assert sum(jumps) / len(jumps) < 64


def test_textured_image_blocky():
    img = textured_image(16, 16)
    assert len(img) == 256
    assert all(0 <= p < 256 for p in img)


def test_vertex_cloud_centered():
    verts = vertex_cloud(500, spread=400)
    assert all(-200 <= v < 200 for v in verts)
    mean = sum(verts) / len(verts)
    assert abs(mean) < 40


def test_sensor_trace_bounded():
    trace = sensor_trace(256, base=1000, swing=500)
    assert len(trace) == 256
    assert all(900 <= v <= 1700 for v in trace)


def test_permutation_is_a_permutation():
    perm = permutation(128)
    assert sorted(perm) == list(range(128))
    assert perm != list(range(128))  # actually shuffled


def test_seeds_decorrelate():
    assert noise(50, 100, seed=1) != noise(50, 100, seed=2)
    assert permutation(64, seed=1) != permutation(64, seed=2)

"""Edge-case tests for :mod:`repro.core.pareto`.

The frontier primitives must be deterministic pure functions — duplicate
points, single-candidate sweeps, degenerate all-dominated fronts,
reference-point conventions and knee ties all have one defined answer.
"""

import pytest

from repro.core.objective import ObjectiveConfig, ObjectiveVector
from repro.core.pareto import (
    ParetoPoint,
    front_report,
    hypervolume,
    knee_point,
    pareto_front,
    reference_point,
)
from repro.obs import Tracer, use_tracer


def P(label, energy, geq, cycles, objective=0.0):
    return ParetoPoint(label=label,
                       vector=ObjectiveVector(energy_nj=float(energy),
                                              geq=geq, cycles=cycles),
                       objective=objective)


class TestObjectiveVector:
    def test_dominates_is_strict(self):
        a = ObjectiveVector(1.0, 2, 3)
        b = ObjectiveVector(2.0, 2, 3)
        assert b.dominates(a) is False
        assert a.dominates(b) is True
        assert a.dominates(a) is False  # equality never dominates

    def test_dominates_requires_all_objectives(self):
        a = ObjectiveVector(1.0, 9, 1)
        b = ObjectiveVector(2.0, 1, 1)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_scalarize_matches_objective_value(self):
        from repro.core.objective import objective_value
        config = ObjectiveConfig(f_energy=0.5, g_hardware=0.5)
        v = ObjectiveVector(energy_nj=50.0, geq=1000, cycles=7)
        assert v.scalarize(100.0, config) \
            == objective_value(50.0, 100.0, 1000, config)


class TestParetoFront:
    def test_single_point_is_its_own_front(self):
        only = P("a", 1, 1, 1)
        assert pareto_front([only]) == [only]

    def test_duplicate_vectors_collapse_to_first(self):
        first = P("first", 1, 2, 3)
        twin = P("twin", 1, 2, 3)
        front = pareto_front([first, twin])
        assert front == [first]

    def test_all_dominated_degenerate_front(self):
        boss = P("boss", 1, 1, 1)
        losers = [P(f"l{i}", 2 + i, 2, 2) for i in range(4)]
        # Dominator last: it must evict every previously kept point.
        assert pareto_front(losers + [boss]) == [boss]
        # Dominator first: nothing else ever enters.
        assert pareto_front([boss] + losers) == [boss]

    def test_incomparable_points_all_kept_in_input_order(self):
        a, b, c = P("a", 1, 3, 1), P("b", 2, 2, 1), P("c", 3, 1, 1)
        assert pareto_front([c, a, b]) == [c, a, b]

    def test_counters_emitted(self):
        tracer = Tracer("t")
        with use_tracer(tracer):
            pareto_front([P("a", 1, 1, 1), P("b", 2, 2, 2)])
        assert tracer.counters["pareto.points"] == 2
        assert tracer.counters["pareto.front"] == 1
        assert tracer.counters["pareto.dominated"] == 1

    def test_empty_input(self):
        assert pareto_front([]) == []


class TestKneePoint:
    def test_empty_front_has_no_knee(self):
        assert knee_point([]) is None

    def test_single_point_front(self):
        only = P("a", 5, 5, 5)
        assert knee_point([only]) is only

    def test_balanced_point_wins(self):
        ends = [P("low-e", 0, 10, 0), P("low-g", 10, 0, 0)]
        middle = P("mid", 4, 4, 0)
        assert knee_point(ends + [middle]) is middle

    def test_tie_breaks_on_vector_then_label(self):
        # Symmetric distances: both at normalized distance 1.
        a, b = P("zz", 0, 2, 0), P("aa", 2, 0, 0)
        assert knee_point([a, b]) is a  # (0,2,0) < (2,0,0)
        # Identical vectors can't meet in a front, but labels still order
        # deterministically for equal-distance distinct vectors.
        assert knee_point([b, a]) is a

    def test_degenerate_axes_are_skipped(self):
        # Only energy varies; geq/cycles spans are zero.
        a, b = P("a", 1, 7, 7), P("b", 2, 7, 7)
        assert knee_point([a, b]) is a


class TestHypervolume:
    def test_single_point_box(self):
        front = [P("a", 1, 1, 1)]
        assert hypervolume(front, (2.0, 2.0, 2.0)) == 1.0

    def test_two_point_union_exact(self):
        # 2D union is 8 (two 6-boxes overlapping in 4), extruded height 1.
        front = [P("a", 1, 2, 3), P("b", 2, 1, 3)]
        assert hypervolume(front, (4.0, 4.0, 4.0)) == 8.0

    def test_point_on_reference_boundary_spans_nothing(self):
        front = [P("a", 4, 1, 1)]
        assert hypervolume(front, (4.0, 4.0, 4.0)) == 0.0

    def test_point_beyond_reference_ignored_not_negative(self):
        front = [P("good", 1, 1, 1), P("bad", 9, 9, 9)]
        assert hypervolume(front, (2.0, 2.0, 2.0)) == 1.0

    def test_empty_front(self):
        assert hypervolume([], (1.0, 1.0, 1.0)) == 0.0

    def test_dominated_volume_monotone_in_front_size(self):
        small = [P("a", 1, 3, 1)]
        ref = (4.0, 4.0, 4.0)
        assert hypervolume(small + [P("b", 3, 1, 1)], ref) \
            > hypervolume(small, ref)


class TestReferencePoint:
    def test_worst_corner_scaled_by_margin(self):
        points = [P("a", 1, 10, 2), P("b", 5, 2, 4)]
        assert reference_point(points, margin=1.0) == (5.0, 10.0, 4.0)
        assert reference_point(points) == (5.0 * 1.1, 10.0 * 1.1, 4.0 * 1.1)

    def test_empty_points(self):
        assert reference_point([]) == (0.0, 0.0, 0.0)


class TestFrontReport:
    def test_shape_and_consistency(self):
        points = [P("a", 1, 2, 3), P("b", 2, 1, 3), P("dup", 1, 2, 3),
                  P("dom", 5, 5, 5)]
        report = front_report(points)
        assert set(report) == {"front", "knee", "reference", "hypervolume"}
        assert [p.label for p in report["front"]] == ["a", "b"]
        assert report["knee"] in report["front"]
        assert report["hypervolume"] \
            == hypervolume(report["front"], report["reference"])

    def test_explicit_reference_is_respected(self):
        points = [P("a", 1, 1, 1)]
        report = front_report(points, reference=(3.0, 3.0, 3.0))
        assert report["reference"] == (3.0, 3.0, 3.0)
        assert report["hypervolume"] == 8.0


class TestCandidateVector:
    def test_vector_tolerates_pre_field_pickles(self):
        """Evaluations unpickled from an old journal lack est_cycles."""
        from repro.core.partitioner import CandidateEvaluation
        stale = CandidateEvaluation.__new__(CandidateEvaluation)
        stale.e_r_nj = 1.0
        stale.e_up_nj = 2.0
        stale.e_rest_nj = 3.0
        stale.asic_cells = 42
        # No est_cycles attribute at all, as after a v0-journal load.
        assert stale.vector == ObjectiveVector(6.0, 42, 0)

"""LRU semantics of the bounded evaluation cache, both tiers.

Satellite coverage: eviction order is the get/put sequence (never hash
order), a hit refreshes recency, the ``cache.evictions``/``hit_rate``
counters stay truthful, and the persistent tier's journal replay
respects the in-memory bound while keeping the journal append-only.
"""

import pytest

from repro.core.checkpoint import (
    PersistentEvaluationCache,
    scan_journal,
)
from repro.core.explore import EvaluationCache
from repro.obs import Tracer, use_tracer


def fill(cache, *keys):
    for key in keys:
        cache.put(key, f"outcome-{key}")


class TestEvictionOrder:
    def test_insert_past_bound_evicts_least_recently_used(self):
        cache = EvaluationCache(max_entries=3)
        fill(cache, "a", "b", "c")
        cache.put("d", "outcome-d")
        assert len(cache) == 3
        assert cache.get("a") is None, "oldest insert must go first"
        assert cache.get("d") == "outcome-d"
        assert cache.evictions == 1

    def test_eviction_follows_insertion_order_exactly(self):
        cache = EvaluationCache(max_entries=2)
        fill(cache, "a", "b", "c", "d")
        # a then b evicted, in that order
        assert cache.evictions == 2
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.get("c") is not None and cache.get("d") is not None

    def test_get_refreshes_recency(self):
        cache = EvaluationCache(max_entries=3)
        fill(cache, "a", "b", "c")
        assert cache.get("a") == "outcome-a"  # refresh: a is newest now
        cache.put("d", "outcome-d")
        assert cache.get("b") is None, "b was LRU after the refresh"
        assert cache.get("a") == "outcome-a"

    def test_rewriting_an_existing_key_never_evicts(self):
        cache = EvaluationCache(max_entries=2)
        fill(cache, "a", "b")
        cache.put("a", "outcome-a2")
        assert cache.evictions == 0
        assert len(cache) == 2
        assert cache.get("a") == "outcome-a2"

    def test_unbounded_cache_never_evicts(self):
        cache = EvaluationCache()
        fill(cache, *(f"k{i}" for i in range(100)))
        assert len(cache) == 100 and cache.evictions == 0

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            EvaluationCache(max_entries=0)


class TestCounters:
    def test_hit_miss_and_hit_rate(self):
        cache = EvaluationCache(max_entries=4)
        assert cache.hit_rate == 0.0
        fill(cache, "a", "b")
        assert cache.get("a") is not None   # hit
        assert cache.get("zz") is None      # miss
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats == {"entries": 2, "hits": 1, "misses": 1,
                         "evictions": 0, "hit_rate": 0.5}

    def test_evictions_reach_the_tracer(self):
        tracer = Tracer("cache")
        cache = EvaluationCache(max_entries=1)
        with use_tracer(tracer):
            fill(cache, "a", "b", "c")
        assert tracer.counters["cache.evictions"] == 2
        assert cache.stats()["evictions"] == 2

    def test_clear_resets_counters(self):
        cache = EvaluationCache(max_entries=1)
        fill(cache, "a", "b")
        cache.get("b")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0,
                                 "evictions": 0, "hit_rate": 0.0}


class TestPersistentTier:
    def test_replay_respects_the_memory_bound(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            fill(cache, "k1", "k2", "k3", "k4", "k5")
        with PersistentEvaluationCache(path, max_entries=2) as cache:
            assert cache.loaded == 5, "every record replays"
            assert len(cache) == 2, "the bound trims the in-memory view"
            # replay preserved journal (= insertion) order: newest stay
            assert cache.get("k4") is not None
            assert cache.get("k5") is not None
            assert cache.get("k1") is None

    def test_eviction_trims_memory_not_the_journal(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path, max_entries=1) as cache:
            fill(cache, "a", "b", "c")
            assert len(cache) == 1 and cache.evictions == 2
        audit = scan_journal(path)
        assert audit["ok"] and audit["records"] == 3, \
            "the journal keeps what the LRU dropped"

    def test_evicted_key_is_journaled_again_and_newest_wins(self,
                                                            tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path, max_entries=1) as cache:
            cache.put("a", "gen-1")
            cache.put("b", "outcome-b")   # evicts a from memory
            cache.put("a", "gen-2")       # a is "new" again: re-journaled
        assert scan_journal(path)["keys"].count("a") == 2
        with PersistentEvaluationCache(path) as cache:
            assert cache.get("a") == "gen-2", "replay keeps the newest"

    def test_replayed_entries_count_as_hits(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            fill(cache, "a", "b")
        tracer = Tracer("cache")
        with use_tracer(tracer):
            with PersistentEvaluationCache(path) as cache:
                assert cache.get("a") == "outcome-a"
                assert cache.hits == 1 and cache.misses == 0
                assert cache.hit_rate == 1.0
        assert tracer.counters["explore.checkpoint.loaded"] == 2

    def test_lru_refresh_applies_to_replayed_entries(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            fill(cache, "a", "b", "c")
        with PersistentEvaluationCache(path, max_entries=3) as cache:
            cache.get("a")                 # refresh the oldest replay
            cache.put("d", "outcome-d")    # evicts b, not a
            assert cache.get("a") is not None
            assert cache.get("b") is None

"""Baseline partitioner tests (performance-driven and average-power)."""

import pytest

from repro.core import Partitioner
from repro.core.baselines import (
    average_power_choice,
    performance_driven_choice,
)
from repro.isa.image import link_program
from repro.lang import Interpreter, compile_source
from repro.power.system import evaluate_initial


SRC = """
global inp: int[256];
global outp: int[256];

func main() -> int {
    for i in 0 .. 256 {
        outp[i] = (inp[i] * 7 + (inp[i] >> 3)) & 0xFFFF;
    }
    var s: int = 0;
    for k in 0 .. 16 { s = s + outp[k * 16]; }
    return s;
}
"""


@pytest.fixture(scope="module")
def setting():
    from repro.tech import cmos6_library
    library = cmos6_library()
    program = compile_source(SRC)
    interp = Interpreter(program)
    interp.set_global("inp", [i % 113 for i in range(256)])
    interp.run()
    image = link_program(program)
    initial = evaluate_initial(
        image, library, globals_init={"inp": [i % 113 for i in range(256)]})
    partitioner = Partitioner(program, library)
    return partitioner, interp.profile, initial


def test_performance_choice_exists_and_speeds_up(setting):
    partitioner, profile, initial = setting
    choice = performance_driven_choice(partitioner, profile, initial)
    assert choice is not None
    # It picked something that reduces predicted cycles; the hot loop is
    # the only sizeable candidate here.
    assert "loop@for1" in choice.cluster.name


def test_performance_choice_ignores_utilization_gate(setting):
    """The classic partitioners have no U_R criterion; candidates with low
    utilization are admissible for them."""
    partitioner, profile, initial = setting
    choice = performance_driven_choice(partitioner, profile, initial)
    # No assertion on utilization vs U_uP — just verify the machinery
    # returned a fully evaluated candidate.
    assert choice.metrics.total_cycles > 0
    assert choice.asic_cells > 0


def test_average_power_choice_exists(setting):
    partitioner, profile, initial = setting
    choice = average_power_choice(partitioner, profile, initial)
    assert choice is not None


def test_low_power_choice_at_least_as_energy_efficient(setting):
    """The paper's claim: utilization-driven selection is competitive with
    or better than both baselines on (estimated) energy.  A small tolerance
    covers the OF's hardware-effort term, which may trade a fraction of a
    percent of energy for a smaller core."""
    partitioner, profile, initial = setting
    decision = partitioner.run(profile, initial)
    assert decision.best is not None
    own = decision.best.e_r_nj + decision.best.e_up_nj + decision.best.e_rest_nj

    for baseline in (performance_driven_choice, average_power_choice):
        choice = baseline(partitioner, profile, initial)
        if choice is None:
            continue
        other = choice.e_r_nj + choice.e_up_nj + choice.e_rest_nj
        assert own <= other * 1.05


def test_no_speedup_no_choice():
    """A program with nothing worth accelerating yields no baseline pick."""
    from repro.tech import cmos6_library
    library = cmos6_library()
    src = "func main(x: int) -> int { return x + 1; }"
    program = compile_source(src)
    interp = Interpreter(program)
    interp.run(1)
    image = link_program(program)
    initial = evaluate_initial(image, library, args=(1,))
    partitioner = Partitioner(program, library)
    assert performance_driven_choice(partitioner, interp.profile,
                                     initial) is None

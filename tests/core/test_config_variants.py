"""Flow-level configuration variants: gated ASIC clocks, chaining,
optimizer — each must preserve functional correctness and behave in the
documented direction."""

import pytest

from repro.core import AppSpec, LowPowerFlow, PartitionConfig
from repro.tech import cmos6_library, with_gated_asic


SRC = """
global inp: int[128];
global outp: int[128];

func main() -> int {
    for i in 0 .. 128 {
        outp[i] = (inp[i] * 5 + (inp[i] >> 1) + i) & 2047;
    }
    var s: int = 0;
    for k in 0 .. 8 { s = s + outp[k * 16]; }
    return s;
}
"""


def make_app(**kwargs):
    return AppSpec(name="variant", source=SRC,
                   globals_init={"inp": [(11 * i) % 509 for i in range(128)]},
                   **kwargs)


@pytest.fixture(scope="module")
def baseline():
    return LowPowerFlow().run(make_app())


# ---------------------------------------------------------------------------
# Gated ASIC clocks
# ---------------------------------------------------------------------------

def test_with_gated_asic_reduces_idle_energy(baseline):
    gated_flow = LowPowerFlow(library=with_gated_asic(cmos6_library()))
    gated = gated_flow.run(make_app())
    assert gated.functional_match
    assert (gated.partitioned.energy.asic_core_nj
            <= baseline.partitioned.energy.asic_core_nj)
    assert gated.best.cluster.name == baseline.best.cluster.name


def test_with_gated_asic_validates_factor():
    with pytest.raises(ValueError):
        with_gated_asic(cmos6_library(), idle_factor=1.5)
    with pytest.raises(ValueError):
        with_gated_asic(cmos6_library(), idle_factor=-0.1)


def test_gated_library_is_a_copy():
    library = cmos6_library()
    gated = with_gated_asic(library)
    assert library.asic_idle_factor == 1.0
    assert gated.asic_idle_factor == pytest.approx(0.05)


# ---------------------------------------------------------------------------
# Chaining in the flow
# ---------------------------------------------------------------------------

def test_chaining_config_runs_and_never_slows_asic(baseline):
    chained = LowPowerFlow(config=PartitionConfig(use_chaining=True)).run(
        make_app())
    assert chained.functional_match
    assert chained.best is not None
    if chained.best.cluster.name == baseline.best.cluster.name \
            and chained.best.resource_set.name == baseline.best.resource_set.name:
        assert (chained.best.metrics.total_cycles
                <= baseline.best.metrics.total_cycles)


# ---------------------------------------------------------------------------
# Optimizer in the flow
# ---------------------------------------------------------------------------

def test_optimized_flow_matches_and_accelerates(baseline):
    optimized = LowPowerFlow().run(make_app(optimize=True))
    assert optimized.functional_match
    assert optimized.initial.result == baseline.initial.result
    assert optimized.initial.total_cycles <= baseline.initial.total_cycles

"""Unit tests for the iterative partitioner's aggregation helpers."""

import pytest

from repro.core.iterative import _combine_metrics, _combine_stats
from repro.sched.utilization import ClusterMetrics
from repro.synth.rtl_sim import AsicRunStats


def stats(compute=100, handshake=4, transfer=10, inv=1, win=5, wout=5):
    return AsicRunStats(compute_cycles=compute, handshake_cycles=handshake,
                        transfer_cycles=transfer, invocations=inv,
                        transfer_words_in=win, transfer_words_out=wout)


def metrics(cycles=100, util=0.5, geq=1000, est=50.0, det=80.0, clock=12.0):
    return ClusterMetrics(total_cycles=cycles, utilization=util,
                          utilization_size_weighted=util * 0.9, geq=geq,
                          energy_estimate_nj=est, energy_detailed_nj=det,
                          clock_ns=clock)


class FakeCandidate:
    def __init__(self, m):
        self.metrics = m


def test_combine_stats_sums_fields():
    combined = _combine_stats([stats(), stats(compute=200, inv=3, win=7)])
    assert combined.compute_cycles == 300
    assert combined.handshake_cycles == 8
    assert combined.transfer_cycles == 20
    assert combined.invocations == 4
    assert combined.transfer_words_in == 12
    assert combined.transfer_words_out == 10
    assert combined.asic_cycles == 300 + 8


def test_combine_metrics_cycle_weighted_utilization():
    a = FakeCandidate(metrics(cycles=100, util=0.8))
    b = FakeCandidate(metrics(cycles=300, util=0.4))
    combined = _combine_metrics([a, b])
    assert combined.total_cycles == 400
    assert combined.utilization == pytest.approx(
        (0.8 * 100 + 0.4 * 300) / 400)


def test_combine_metrics_sums_energy_and_geq():
    a = FakeCandidate(metrics(geq=1000, est=10.0, det=20.0, clock=12.0))
    b = FakeCandidate(metrics(geq=2500, est=5.0, det=7.0, clock=25.0))
    combined = _combine_metrics([a, b])
    assert combined.geq == 3500
    assert combined.energy_estimate_nj == pytest.approx(15.0)
    assert combined.energy_detailed_nj == pytest.approx(27.0)
    assert combined.clock_ns == 25.0  # slowest core's clock


def test_combine_metrics_empty():
    combined = _combine_metrics([])
    assert combined.total_cycles == 0
    assert combined.utilization == 0.0
    assert combined.clock_ns == 0.0


def test_combine_stats_empty():
    combined = _combine_stats([])
    assert combined.asic_cycles == 0

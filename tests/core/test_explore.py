"""Tests for the parallel exploration engine and the observability layer.

The headline guarantee: running the sweep on worker processes yields
**bit-identical** partitioning decisions and Table-1 numbers to the serial
path, on every bundled application.  The rest covers the memoization
cache (stable keys, hit/miss accounting, eviction), the tracer (span
hierarchy, counters, trace-file round-trip) and a subprocess smoke test
of ``python -m repro explore --jobs 2 --trace ...``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.apps import ALL_APPS, app_by_name
from repro.cli import main
from repro.cluster import decompose_into_clusters
from repro.core import EvaluationCache, ExplorationEngine
from repro.obs import (
    NullTracer,
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    Tracer,
    get_tracer,
    load_trace,
    use_tracer,
    validate_trace,
)


def _fingerprint(result):
    """Everything that must be bit-identical between serial and parallel."""
    decision = result.decision
    best = decision.best
    return (
        result.app.name,
        None if best is None else (best.cluster.name,
                                   best.resource_set.name,
                                   best.objective,
                                   best.asic_cells),
        tuple(sorted((c.cluster.name, c.resource_set.name, c.objective)
                     for c in decision.candidates)),
        tuple(sorted(decision.rejections)),
        decision.up_utilization,
        result.initial.total_energy_nj,
        None if result.partitioned is None
        else result.partitioned.total_energy_nj,
        result.energy_savings_percent,
        result.time_change_percent,
    )


@pytest.fixture(scope="module")
def serial_results():
    with ExplorationEngine() as engine:
        return {name: engine.run_flow(app_by_name(name))
                for name in sorted(ALL_APPS)}


@pytest.fixture(scope="module")
def parallel_results():
    apps = [app_by_name(name) for name in sorted(ALL_APPS)]
    with ExplorationEngine(jobs=2) as engine:
        return engine.run_flows(apps)


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_parallel_flow_matches_serial(name, serial_results, parallel_results):
    assert _fingerprint(parallel_results[name]) \
        == _fingerprint(serial_results[name])


@pytest.mark.slow
def test_parallel_candidate_sweep_matches_serial(serial_results):
    # The other parallel level: one app, candidates fanned over workers.
    app = app_by_name("ckey")
    with ExplorationEngine(jobs=2) as engine:
        report = engine.explore(app)
    assert _fingerprint(serial_results["ckey"])[1:5] == (
        (report.decision.best.cluster.name,
         report.decision.best.resource_set.name,
         report.decision.best.objective,
         report.decision.best.asic_cells),
        tuple(sorted((c.cluster.name, c.resource_set.name, c.objective)
                     for c in report.decision.candidates)),
        tuple(sorted(report.decision.rejections)),
        report.decision.up_utilization,
    )


def test_worker_counters_merge_into_parent_tracer():
    serial_tracer = Tracer("serial")
    with ExplorationEngine(tracer=serial_tracer) as engine:
        engine.explore(app_by_name("ckey"))
    parallel_tracer = Tracer("parallel")
    with ExplorationEngine(jobs=2, tracer=parallel_tracer) as engine:
        engine.explore(app_by_name("ckey"))
    # Scheduling happens inside the workers; their counters must surface
    # in the parent with the exact serial totals.
    for name in ("explore.evaluated", "sched.list_schedule.calls",
                 "sched.ops_scheduled"):
        assert parallel_tracer.counters.get(name, 0) \
            == serial_tracer.counters.get(name, 0) > 0, name


# ---------------------------------------------------------------------------
# Memoization cache
# ---------------------------------------------------------------------------

def test_cluster_digest_stable_across_recompiles():
    # op_ids come from a process-global counter; the digest must not see it.
    def digests():
        program = app_by_name("ckey").compile()
        return {c.name: c.digest()
                for c in decompose_into_clusters(program)}

    assert digests() == digests()


def test_cache_hits_on_repeated_sweep():
    cache = EvaluationCache()
    with ExplorationEngine(cache=cache) as engine:
        first = engine.explore(app_by_name("ckey"))
        examined = first.decision.examined
        assert cache.stats() == {"entries": examined, "hits": 0,
                                 "misses": examined, "evictions": 0,
                                 "hit_rate": 0.0}
        second = engine.explore(app_by_name("ckey"))
    assert cache.stats() == {"entries": examined, "hits": examined,
                             "misses": examined, "evictions": 0,
                             "hit_rate": 0.5}
    assert _decision_fp(second.decision) == _decision_fp(first.decision)


def test_cache_shared_between_jobs_levels():
    # A parallel sweep must populate the same keys a serial one reads.
    cache = EvaluationCache()
    app = app_by_name("ckey")
    with ExplorationEngine(jobs=2, cache=cache) as engine:
        parallel = engine.explore(app)
    with ExplorationEngine(cache=cache) as engine:
        serial = engine.explore(app)
    assert serial.cache_stats["hits"] >= parallel.decision.examined
    assert _decision_fp(serial.decision) == _decision_fp(parallel.decision)


def test_cache_counter_names_on_tracer():
    tracer = Tracer("cache")
    with ExplorationEngine(cache=EvaluationCache(), tracer=tracer) as engine:
        engine.explore(app_by_name("ckey"))
        engine.explore(app_by_name("ckey"))
    assert tracer.counters["explore.cache.misses"] \
        == tracer.counters["explore.cache.hits"]


def test_cache_eviction_is_lru_bounded():
    cache = EvaluationCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1     # refresh "a": "b" is now the LRU key
    cache.put("c", 3)
    assert cache.stats()["entries"] == 2
    assert cache.get("b") is None  # least recently used was evicted
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1
    assert cache.stats()["evictions"] == 1


def test_cache_eviction_emits_counter_and_hit_rate():
    tracer = Tracer("evict")
    cache = EvaluationCache(max_entries=1)
    with use_tracer(tracer):
        cache.put("a", 1)
        cache.put("b", 2)          # evicts "a"
    assert tracer.counters["cache.evictions"] == 1
    assert cache.get("b") == 2
    assert cache.get("a") is None
    assert cache.hit_rate == 0.5
    assert cache.stats()["hit_rate"] == 0.5


def test_cache_rejects_nonpositive_bound():
    import pytest

    with pytest.raises(ValueError):
        EvaluationCache(max_entries=0)


def _decision_fp(decision):
    best = decision.best
    return (
        None if best is None else (best.cluster.name,
                                   best.resource_set.name, best.objective),
        tuple(sorted((c.cluster.name, c.resource_set.name, c.objective)
                     for c in decision.candidates)),
        tuple(sorted(decision.rejections)),
    )


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_tracer_span_hierarchy_and_counters():
    tracer = Tracer("unit")
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):  # same-named siblings aggregate
            pass
    tracer.count("widgets", 2)
    tracer.count("widgets")

    data = tracer.to_dict()
    validate_trace(data)
    assert data["schema"] == TRACE_SCHEMA_NAME
    assert data["version"] == TRACE_SCHEMA_VERSION
    assert data["counters"] == {"widgets": 3}
    (outer,) = data["root"]["children"]
    assert outer["name"] == "outer" and outer["calls"] == 1
    (inner,) = outer["children"]
    assert inner["name"] == "inner" and inner["calls"] == 2
    assert inner["total_s"] <= outer["total_s"]


def test_trace_file_round_trip(tmp_path):
    tracer = Tracer("round-trip")
    with tracer.span("work"):
        tracer.count("things", 7)
    path = tmp_path / "trace.json"
    tracer.write(str(path))

    data = load_trace(str(path))
    assert data["label"] == "round-trip"
    assert data["counters"] == {"things": 7}
    assert data["root"]["children"][0]["name"] == "work"


def test_validate_trace_rejects_malformed():
    with pytest.raises(ValueError):
        validate_trace({"schema": "not-a-trace"})
    with pytest.raises(ValueError):
        validate_trace({"schema": TRACE_SCHEMA_NAME,
                        "version": TRACE_SCHEMA_VERSION,
                        "label": "x", "counters": {},
                        "root": {"name": "root"}})  # missing span fields


def test_use_tracer_scopes_the_global():
    before = get_tracer()
    tracer = Tracer("scoped")
    with use_tracer(tracer) as active:
        assert active is tracer
        assert get_tracer() is tracer
    assert get_tracer() is before


def test_null_tracer_is_inert():
    tracer = NullTracer()
    with tracer.span("anything"):
        tracer.count("ignored", 5)
    assert tracer.counters == {}


# ---------------------------------------------------------------------------
# CLI smoke checks (serial runs by default; the subprocess one is slow)
# ---------------------------------------------------------------------------

def test_cli_explore_serial(capsys, tmp_path):
    trace_file = tmp_path / "trace.json"
    assert main(["explore", "ckey", "--trace", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "candidate landscape" in out
    assert "cache:" in out
    load_trace(str(trace_file))  # schema-validates


@pytest.mark.slow
def test_cli_explore_parallel_subprocess_smoke(tmp_path):
    """The acceptance smoke check: a real ``python -m repro explore
    ckey --jobs 2 --trace ...`` subprocess whose trace validates."""
    trace_file = tmp_path / "t.json"
    src_dir = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "explore", "ckey",
         "--jobs", "2", "--trace", str(trace_file)],
        capture_output=True, text=True, timeout=300, env=env)
    assert proc.returncode == 0, proc.stderr
    assert "candidate landscape" in proc.stdout
    assert "trace written" in proc.stderr

    data = load_trace(str(trace_file))
    assert data["schema"] == TRACE_SCHEMA_NAME
    assert data["counters"].get("explore.evaluated", 0) > 0
    span_names = {child["name"] for child in data["root"]["children"]}
    assert span_names  # at least one top-level span recorded

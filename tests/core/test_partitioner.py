"""Partitioner (Fig. 1 algorithm) tests on small synthetic programs."""

import pytest

from repro.core import PartitionConfig, Partitioner
from repro.core.objective import ObjectiveConfig
from repro.isa.image import link_program
from repro.lang import Interpreter, compile_source
from repro.power.system import evaluate_initial
from repro.tech import ResourceKind, ResourceSet


KERNEL_SRC = """
global inp: int[256];
global outp: int[256];

func main() -> int {
    # Hot MAC kernel: an obvious hardware candidate.
    for i in 0 .. 256 {
        outp[i] = (inp[i] * 3 + (inp[i] >> 2)) & 0xFFFF;
    }
    # Light software epilogue.
    var s: int = 0;
    for k in 0 .. 16 { s = s + outp[k * 16]; }
    return s;
}
"""


@pytest.fixture()
def setting(library):
    program = compile_source(KERNEL_SRC)
    interp = Interpreter(program)
    interp.set_global("inp", [i % 97 for i in range(256)])
    interp.run()
    image = link_program(program)
    initial = evaluate_initial(
        image, library, globals_init={"inp": [i % 97 for i in range(256)]})
    return program, interp.profile, initial


def test_partitioner_finds_the_kernel(setting, library):
    program, profile, initial = setting
    decision = Partitioner(program, library).run(profile, initial)
    assert decision.best is not None
    assert "loop@for1" in decision.best.cluster.name


def test_best_beats_utilization_bar(setting, library):
    program, profile, initial = setting
    decision = Partitioner(program, library).run(profile, initial)
    assert decision.best.utilization > decision.up_utilization


def test_best_objective_below_initial(setting, library):
    program, profile, initial = setting
    decision = Partitioner(program, library).run(profile, initial)
    assert decision.best.objective < decision.initial_objective


def test_candidates_and_rejections_disjoint(setting, library):
    program, profile, initial = setting
    decision = Partitioner(program, library).run(profile, initial)
    evaluated = {(c.cluster.name, c.resource_set.name)
                 for c in decision.candidates}
    rejected = {(name, rs) for name, rs, _ in decision.rejections}
    assert evaluated & rejected == set()
    assert decision.examined == len(evaluated) + len(rejected)


def test_n_max_limits_preselection(setting, library):
    program, profile, initial = setting
    config = PartitionConfig(n_max_clusters=1)
    decision = Partitioner(program, library, config).run(profile, initial)
    assert len(decision.preselected) <= 1


def test_geq_cap_rejects_everything_when_tiny(setting, library):
    program, profile, initial = setting
    config = PartitionConfig(
        objective=ObjectiveConfig(geq_cap=100))
    decision = Partitioner(program, library, config).run(profile, initial)
    assert decision.best is None
    assert any("cells over cap" in reason
               for _, _, reason in decision.rejections)


def test_restricted_resource_sets_skip_infeasible(setting, library):
    program, profile, initial = setting
    # Only a comparator: cannot execute the kernel's multiply.
    config = PartitionConfig(resource_sets=[
        ResourceSet("cmp-only", {ResourceKind.COMPARATOR: 1})])
    decision = Partitioner(program, library, config).run(profile, initial)
    assert decision.best is None
    assert all("no resource" in reason or "U_R" in reason
               for _, _, reason in decision.rejections)


def test_hw_blocks_cover_cluster(setting, library):
    program, profile, initial = setting
    decision = Partitioner(program, library).run(profile, initial)
    best = decision.best
    blocks = best.hw_blocks
    assert all(func == best.cluster.function for func, _ in blocks)
    assert {b for _, b in blocks} >= set(best.cluster.blocks)


def test_function_cluster_hw_blocks_include_prologue(library):
    src = """
    func kernel(a: int[64]) -> int {
        var s: int = 0;
        for i in 0 .. 64 { s = s + a[i] * 3; }
        return s;
    }
    func main() -> int {
        var buf: int[64];
        for i in 0 .. 64 { buf[i] = i; }
        return kernel(buf);
    }
    """
    program = compile_source(src)
    interp = Interpreter(program)
    interp.run()
    image = link_program(program)
    initial = evaluate_initial(image, library)
    decision = Partitioner(program, library).run(interp.profile, initial)
    function_candidates = [c for c in decision.candidates
                           if c.cluster.kind == "function"]
    if function_candidates:
        blocks = function_candidates[0].hw_blocks
        assert ("kernel", "__prologue") in blocks
        assert ("kernel", "__epilogue") in blocks


def test_no_partition_for_pure_control_program(library):
    src = """
    func main(x: int) -> int {
        var r: int = 0;
        if x > 10 { r = 1; } else { if x > 5 { r = 2; } else { r = 3; } }
        return r;
    }
    """
    program = compile_source(src)
    interp = Interpreter(program)
    interp.run(7)
    image = link_program(program)
    initial = evaluate_initial(image, library, args=(7,))
    decision = Partitioner(program, library).run(interp.profile, initial)
    assert decision.best is None

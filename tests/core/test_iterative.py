"""Iterative multi-core partitioning tests (Eq. 3 generalized)."""

import pytest

from repro.core import AppSpec, IterativePartitioner, LowPowerFlow


TWO_KERNEL_SRC = """
global a: int[256];
global b: int[256];
global c: int[256];

func main() -> int {
    for i in 0 .. 256 { b[i] = (a[i] * 9 + (a[i] >> 2)) & 2047; }
    var s1: int = 0;
    for k in 0 .. 8 { s1 = s1 + b[k * 32]; }
    for i in 0 .. 256 { c[i] = ((b[i] ^ i) * 5 + 3) & 4095; }
    var s2: int = 0;
    for k in 0 .. 8 { s2 = s2 + c[k * 32]; }
    return s1 * 10000 + s2;
}
"""


@pytest.fixture(scope="module")
def two_kernel_app():
    return AppSpec(name="twohot", source=TWO_KERNEL_SRC,
                   globals_init={"a": [i % 251 for i in range(256)]})


@pytest.fixture(scope="module")
def iterative_result(two_kernel_app):
    return IterativePartitioner(max_cores=3).run(two_kernel_app)


def test_commits_both_kernels(iterative_result):
    assert len(iterative_result.steps) == 2
    names = {step.candidate.cluster.name for step in iterative_result.steps}
    assert len(names) == 2  # two distinct clusters


def test_committed_clusters_disjoint(iterative_result):
    seen = set()
    for step in iterative_result.steps:
        blocks = {(step.candidate.cluster.function, b)
                  for b in step.candidate.cluster.blocks}
        assert not (blocks & seen)
        seen |= blocks


def test_energy_monotonically_decreases(iterative_result):
    energies = [iterative_result.initial.total_energy_nj]
    energies += [step.system.total_energy_nj
                 for step in iterative_result.steps]
    assert energies == sorted(energies, reverse=True)
    # Each accepted step met the minimum-improvement bar.
    for before, after in zip(energies, energies[1:]):
        assert (before - after) / before >= 0.01


def test_functional_equivalence_at_every_step(iterative_result):
    assert iterative_result.functional_match


def test_multicore_beats_single_core(two_kernel_app, iterative_result):
    single = LowPowerFlow().run(two_kernel_app)
    assert single.accepted
    assert (iterative_result.final.total_energy_nj
            < single.partitioned.total_energy_nj)


def test_total_cells_sum_of_cores(iterative_result):
    assert iterative_result.total_asic_cells == sum(
        step.candidate.asic_cells for step in iterative_result.steps)


def test_max_cores_respected(two_kernel_app):
    result = IterativePartitioner(max_cores=1).run(two_kernel_app)
    assert len(result.steps) == 1


def test_no_candidates_yields_empty_result():
    app = AppSpec(name="tiny", source="""
    func main(x: int) -> int { return x * 2 + 1; }
    """, args=(5,))
    result = IterativePartitioner().run(app)
    assert result.steps == []
    assert result.final is result.initial
    assert result.energy_savings_percent == 0.0


def test_high_improvement_bar_stops_early(two_kernel_app):
    # Demanding a 90% gain per core: nothing qualifies.
    result = IterativePartitioner(max_cores=3,
                                  min_improvement=0.9).run(two_kernel_app)
    assert result.steps == []


def test_invalid_parameters():
    with pytest.raises(ValueError):
        IterativePartitioner(max_cores=0)
    with pytest.raises(ValueError):
        IterativePartitioner(min_improvement=1.0)
    with pytest.raises(ValueError):
        IterativePartitioner(min_improvement=-0.1)

"""Exit-code contract of the CLI (documented in ``repro.cli``).

0 = success, 1 = generic failure (including benchmark regressions under
``bench --compare``), 2 = ``verify --strict`` with ERROR findings,
3 = ``fuzz`` found a differential mismatch.  CI keys off these numbers,
so they are pinned here end to end through ``main()`` — with the
expensive inner machinery (benchmark bodies, the invariant audit)
monkeypatched at exactly the seams the real commands use.
"""

import pytest

import repro.bench as bench
import repro.verify
from repro.cli import main
from repro.verify.findings import Finding, Severity, VerificationReport


# ---------------------------------------------------------------------------
# bench --compare: regression -> 1
# ---------------------------------------------------------------------------


def _bench_report(best):
    return {
        "schema": bench.BENCH_SCHEMA_NAME,
        "version": bench.BENCH_SCHEMA_VERSION,
        "created": "2026-01-01T00:00:00Z",
        "repeats": 1,
        "environment": {},
        "results": {
            "stub": {
                "unit": "s",
                "higher_is_better": False,
                "median": best,
                "best": best,
                "worst": best,
                "dispersion": 0.0,
                "runs": [best],
                "meta": {},
            },
        },
    }


@pytest.fixture()
def stubbed_bench(monkeypatch):
    """Replace the benchmark bodies: the current run always takes 2.0 s."""
    monkeypatch.setattr(bench, "iter_specs", lambda only=None: ["stub"])
    monkeypatch.setattr(
        bench, "run_suite",
        lambda specs, repeats=3, ctx=None, progress=None: _bench_report(2.0))


def test_bench_compare_regression_exits_1(stubbed_bench, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    bench.write_report(_bench_report(1.0), str(baseline))  # was 2x faster
    status = main(["bench", "--compare", str(baseline), "--threshold", "5",
                   "--output", str(tmp_path / "current.json")])
    assert status == 1
    captured = capsys.readouterr()
    assert "regressed" in captured.err


def test_bench_compare_clean_exits_0(stubbed_bench, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    bench.write_report(_bench_report(2.0), str(baseline))  # same speed
    status = main(["bench", "--compare", str(baseline),
                   "--output", str(tmp_path / "current.json")])
    assert status == 0
    assert "regressed" not in capsys.readouterr().err


def test_bench_compare_unreadable_baseline_exits_1(stubbed_bench, tmp_path,
                                                   capsys):
    status = main(["bench", "--compare", str(tmp_path / "missing.json"),
                   "--output", str(tmp_path / "current.json")])
    assert status == 1
    assert "cannot load baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# verify --strict: ERROR findings -> 2
# ---------------------------------------------------------------------------


def _inject_error_finding(monkeypatch):
    """Patch the audit at the seam ``LowPowerFlow._finish`` imports from:
    every verification now reports one fabricated hard-invariant break."""

    def fake_verify(result, library=None, **_):
        report = VerificationReport(label="injected")
        report.add(Finding(
            check="test.injected", severity=Severity.ERROR, layer="core",
            message="fabricated invariant break for exit-code test"))
        return report

    monkeypatch.setattr(repro.verify, "verify_flow_result", fake_verify)


def test_verify_strict_with_errors_exits_2(monkeypatch, capsys):
    _inject_error_finding(monkeypatch)
    status = main(["verify", "ckey", "--strict"])
    assert status == 2
    captured = capsys.readouterr()
    assert "1 error(s)" in captured.out
    assert "fabricated invariant break" in captured.out


def test_verify_without_strict_reports_but_exits_0(monkeypatch, capsys):
    _inject_error_finding(monkeypatch)
    status = main(["verify", "ckey"])
    assert status == 0
    assert "1 error(s)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# fuzz: differential mismatch -> 3
# ---------------------------------------------------------------------------


def test_fuzz_mismatch_exits_3(tmp_path, capsys):
    status = main(["fuzz", "--seed", "0", "--count", "8",
                   "--flow-every", "0", "--inject-bug", "iss-sub-swap",
                   "--max-mismatches", "1", "--no-shrink",
                   "--out", str(tmp_path)])
    assert status == 3
    out = capsys.readouterr().out
    assert "MISMATCH" in out
    assert out.strip().splitlines()[-1].startswith("fuzz: FAIL")


def test_fuzz_clean_campaign_exits_0(capsys):
    assert main(["fuzz", "--seed", "0", "--count", "3",
                 "--flow-every", "0"]) == 0
    assert capsys.readouterr().out.strip().endswith("fuzz: OK")


def test_fuzz_unknown_bug_is_rejected(capsys):
    with pytest.raises(ValueError, match="unknown --inject-bug"):
        main(["fuzz", "--inject-bug", "no-such-bug", "--count", "1"])


def test_fuzz_list_bugs_exits_0(capsys):
    assert main(["fuzz", "--list-bugs"]) == 0
    out = capsys.readouterr().out
    assert "iss-sub-swap" in out

"""Zero-copy shared-memory result transport for exploration workers.

Large worker results ride a shared-memory segment back to the engine
(only a tiny ticket crosses the executor pipe); the transport must be
invisible in every observable — decisions, counters merged from
workers, cache contents — and must never leak segments.
"""

import os

import pytest

from repro.apps import app_by_name
from repro.core.explore import (
    ExplorationEngine,
    SHM_MIN_RESULT_BYTES,
    _ShmResult,
    _pack_result,
    _unpack_result,
)
from repro.obs import Tracer


def _decision_fingerprint(report):
    decision = report.decision
    best = decision.best
    return (
        None if best is None else (best.cluster.name,
                                   best.resource_set.name,
                                   best.objective),
        tuple(sorted((c.cluster.name, c.resource_set.name, c.objective)
                     for c in decision.candidates)),
        tuple(sorted(decision.rejections)),
    )


def _shm_segments():
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-POSIX
        return set()


# ---------------------------------------------------------------------------
# Pack/unpack round-trip (no workers involved)
# ---------------------------------------------------------------------------

def test_pack_result_below_threshold_passes_through():
    payload = ("pair", "outcome", {}, 0.1, None)
    assert _pack_result(payload, SHM_MIN_RESULT_BYTES) is payload


def test_pack_result_disabled_passes_through():
    payload = ("x",) * 10000
    assert _pack_result(payload, None) is payload


def test_pack_unpack_round_trip_and_counters():
    payload = {"big": list(range(5000)), "label": "result"}
    before = _shm_segments()
    ticket = _pack_result(payload, 1)
    assert isinstance(ticket, _ShmResult)
    assert ticket.size > 0
    tracer = Tracer()
    restored = _unpack_result(ticket, tracer)
    assert restored == payload
    assert tracer.counters["explore.shm.results"] == 1
    assert tracer.counters["explore.shm.bytes"] == ticket.size
    # the segment is unlinked after redemption — nothing left behind
    assert _shm_segments() - before == set()


def test_unpack_passes_plain_results_through():
    tracer = Tracer()
    payload = ("plain",)
    assert _unpack_result(payload, tracer) is payload
    assert "explore.shm.results" not in tracer.counters


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------

def test_result_transport_validation():
    with pytest.raises(ValueError, match="result_transport"):
        ExplorationEngine(result_transport="carrier-pigeon")


def test_shm_transport_decision_identical_to_serial():
    with ExplorationEngine(jobs=1) as engine:
        serial = engine.explore(app_by_name("ckey"))
    before = _shm_segments()
    tracer = Tracer()
    with ExplorationEngine(jobs=2, tracer=tracer) as engine:
        engine._shm_threshold = 1  # force every result through a segment
        parallel = engine.explore(app_by_name("ckey"))
    assert _decision_fingerprint(parallel) == _decision_fingerprint(serial)
    assert tracer.counters["explore.shm.results"] > 0
    assert tracer.counters["explore.shm.bytes"] > 0
    # worker counters still merge through the ticketed results
    assert tracer.counters.get("explore.evaluated", 0) > 0
    assert _shm_segments() - before == set()


def test_pipe_transport_still_available():
    tracer = Tracer()
    with ExplorationEngine(jobs=2, tracer=tracer,
                           result_transport="pipe") as engine:
        assert engine._shm_threshold is None
        report = engine.explore(app_by_name("ckey"))
    assert report.decision.best is not None
    assert "explore.shm.results" not in tracer.counters

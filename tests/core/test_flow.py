"""Design-flow (Fig. 5) end-to-end tests on a compact application."""

import pytest

from repro.core import AppSpec, LowPowerFlow


SRC = """
global inp: int[128];
global outp: int[128];

func main() -> int {
    for i in 0 .. 128 {
        outp[i] = (inp[i] * 5 + (inp[i] >> 1)) & 1023;
    }
    var s: int = 0;
    for k in 0 .. 8 { s = s + outp[k * 16]; }
    return s;
}
"""


@pytest.fixture(scope="module")
def flow_result():
    app = AppSpec(name="mini", source=SRC,
                  globals_init={"inp": [(7 * i) % 311 for i in range(128)]})
    return LowPowerFlow().run(app)


def test_flow_completes_with_partition(flow_result):
    assert flow_result.best is not None
    assert flow_result.partitioned is not None
    assert flow_result.accepted


def test_partitioned_system_is_functionally_identical(flow_result):
    assert flow_result.functional_match
    assert flow_result.partitioned.result == flow_result.initial.result


def test_energy_actually_saved(flow_result):
    assert flow_result.energy_savings_percent > 0
    assert (flow_result.partitioned.total_energy_nj
            < flow_result.initial.total_energy_nj)


def test_synthesis_artifacts_produced(flow_result):
    assert flow_result.datapath is not None
    assert flow_result.controller is not None
    assert flow_result.netlist is not None
    assert flow_result.netlist.total_cells > 0
    assert flow_result.gate_energy is not None
    assert flow_result.gate_energy.total_nj > 0


def test_gate_level_energy_used_in_system_accounting(flow_result):
    assert flow_result.partitioned.energy.asic_core_nj == pytest.approx(
        flow_result.gate_energy.total_nj)


def test_asic_cells_reported(flow_result):
    assert flow_result.asic_cells == flow_result.netlist.total_cells
    assert 0 < flow_result.asic_cells < 30_000


def test_asic_stats_consistent_with_partitioned_run(flow_result):
    stats = flow_result.asic_stats
    assert flow_result.partitioned.asic_cycles == stats.asic_cycles
    assert stats.invocations == flow_result.best.invocations


def test_profile_and_decision_exposed(flow_result):
    assert flow_result.profile.steps > 0
    assert flow_result.decision.preselected
    assert flow_result.decision.candidates


def test_flow_without_candidates_returns_initial_only():
    app = AppSpec(name="scalar", source="""
    func main(x: int) -> int {
        if x > 0 { return x; }
        return -x;
    }
    """, args=(5,))
    result = LowPowerFlow().run(app)
    assert result.best is None
    assert result.partitioned is None
    assert not result.accepted
    assert result.energy_savings_percent == 0.0
    assert result.time_change_percent == 0.0
    assert result.functional_match  # trivially true


def test_summary_renders_full_report(flow_result):
    text = flow_result.summary()
    assert "U_uP" in text
    assert "chosen:" in text
    assert "|I |" in text and "|P |" in text
    assert "functional match: True" in text
    assert "gate-level ASIC energy" in text


def test_summary_without_partition():
    app = AppSpec(name="nothing", source="""
    func main(x: int) -> int { return x + 1; }
    """, args=(1,))
    result = LowPowerFlow().run(app)
    text = result.summary()
    assert "no beneficial partition found" in text

"""Objective function (Fig. 1 line 13) tests."""

import pytest

from repro.core.objective import ObjectiveConfig, objective_value


def test_energy_term_normalized():
    cfg = ObjectiveConfig(f_energy=1.0, g_hardware=0.0)
    assert objective_value(500.0, e0_nj=1000.0, geq=0, config=cfg) == \
        pytest.approx(0.5)


def test_identity_partition_scores_f():
    cfg = ObjectiveConfig(f_energy=2.0, g_hardware=0.0)
    assert objective_value(1000.0, e0_nj=1000.0, geq=0, config=cfg) == \
        pytest.approx(2.0)


def test_hardware_term_normalized():
    cfg = ObjectiveConfig(f_energy=1.0, g_hardware=0.5, geq_normalizer=16000)
    value = objective_value(0.0, e0_nj=1.0, geq=8000, config=cfg)
    assert value == pytest.approx(0.25)


def test_f_balances_terms():
    low_f = ObjectiveConfig(f_energy=0.5, g_hardware=0.1)
    high_f = ObjectiveConfig(f_energy=2.0, g_hardware=0.1)
    energy, e0, geq = 400.0, 1000.0, 8000
    assert objective_value(energy, e0, geq, high_f) > \
        objective_value(energy, e0, geq, low_f)


def test_lower_energy_always_wins_with_equal_hardware():
    cfg = ObjectiveConfig()
    better = objective_value(300.0, 1000.0, 5000, cfg)
    worse = objective_value(600.0, 1000.0, 5000, cfg)
    assert better < worse


def test_invalid_configs():
    with pytest.raises(ValueError):
        ObjectiveConfig(f_energy=0)
    with pytest.raises(ValueError):
        ObjectiveConfig(g_hardware=-0.1)
    with pytest.raises(ValueError):
        ObjectiveConfig(geq_normalizer=0)


def test_invalid_e0():
    with pytest.raises(ValueError):
        objective_value(1.0, e0_nj=0.0, geq=0, config=ObjectiveConfig())


def test_geq_cap_default_present():
    assert ObjectiveConfig().geq_cap is not None

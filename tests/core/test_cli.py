"""CLI tests (``python -m repro ...``)."""

import pytest

from repro.cli import main


def test_apps_lists_all_six(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("3d", "MPG", "ckey", "digs", "engine", "trick"):
        assert name in out


def test_run_prints_table_and_succeeds(capsys):
    assert main(["run", "ckey"]) == 0
    out = capsys.readouterr().out
    assert "|I |" in out and "|P |" in out
    assert "functional match: True" in out


def test_run_with_optimizer(capsys):
    assert main(["run", "ckey", "--optimize"]) == 0
    out = capsys.readouterr().out
    assert "saved" in out


def test_clusters_command(capsys):
    assert main(["clusters", "digs"]) == 0
    out = capsys.readouterr().out
    assert "pre-selected" in out
    assert "smooth_engine/loop@for1" in out
    assert "E_trans" in out


def test_disasm_whole_image(capsys):
    assert main(["disasm", "engine"]) == 0
    out = capsys.readouterr().out
    assert "ret" in out
    assert "[main:" in out


def test_disasm_single_function(capsys):
    assert main(["disasm", "engine", "--function", "interp3"]) == 0
    out = capsys.readouterr().out
    assert "[interp3:" in out
    assert "[main:" not in out


def test_multicore_command(capsys):
    assert main(["multicore", "ckey", "--max-cores", "2"]) == 0
    out = capsys.readouterr().out
    assert "ASIC core(s)" in out
    assert "total savings" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "doom"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_cachesweep_ranks_geometries(capsys):
    assert main(["cachesweep", "digs", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "trace events" in out
    assert "engine=auto" in out
    assert "mem E (nJ)" in out
    # 3 geometry rows below the two header lines
    assert sum(1 for line in out.splitlines() if line.startswith("i")) == 3


def test_cachesweep_engines_print_identical_rankings(capsys):
    assert main(["cachesweep", "digs", "--engine", "batch"]) == 0
    batch_out = capsys.readouterr().out
    assert main(["cachesweep", "digs", "--engine", "reference"]) == 0
    reference_out = capsys.readouterr().out
    strip = lambda text: [line for line in text.splitlines()
                          if not line.startswith(("digs", "geometry"))]
    assert strip(batch_out) == strip(reference_out)


def test_cachesweep_without_memory_system_fails_cleanly(capsys):
    # ckey models no caches (model_caches=False): no trace to sweep.
    assert main(["cachesweep", "ckey"]) == 1
    err = capsys.readouterr().err
    assert "model_caches" in err


def test_cachesweep_rejects_bad_engine():
    with pytest.raises(SystemExit):
        main(["cachesweep", "ckey", "--engine", "warp"])

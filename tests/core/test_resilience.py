"""Fault-tolerance tests for the exploration runtime.

Every recovery path of :class:`ExplorationEngine` — worker exceptions,
kills, hangs, pool rebuilds, degradation to serial — is driven
deterministically through :class:`FaultPlan` and must end in a decision
bit-identical to the serial reference.  The persistence half covers the
journaled :class:`PersistentEvaluationCache` (round-trip, corruption
tolerance, kill-safety), :class:`SweepCheckpoint` binding, the
``explore.checkpoint`` verifier, and the ``--checkpoint``/``--resume``
CLI path.
"""

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
from repro.apps import app_by_name
from repro.cli import main
from repro.core import (
    CheckpointMismatch,
    EvaluationCache,
    ExplorationEngine,
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    PartitionConfig,
    Partitioner,
    PersistentEvaluationCache,
    SweepCheckpoint,
    checkpoint_context_key,
)
from repro.core.checkpoint import (
    JOURNAL_MAGIC,
    scan_journal,
)
from repro.isa.image import link_program
from repro.lang import Interpreter
from repro.obs import Tracer
from repro.tech import cmos6_library
from repro.verify import (
    Finding,
    Severity,
    VerificationReport,
    verify_checkpoint,
)


#: Set per-test (see test_run_flows_survives_broken_pool): the O_EXCL
#: marker file ensuring exactly one forked worker dies.
_LETHAL_MARKER = None

# Bound at import time: the monkeypatched module attribute would recurse.
from repro.core.explore import _worker_run_flow as _REAL_RUN_FLOW  # noqa: E402


def _lethal_run_flow(library, config, payload, verify=False,
                     shm_threshold=None):
    if payload.name == "trick" and _LETHAL_MARKER:
        try:
            fd = os.open(_LETHAL_MARKER,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
            os._exit(11)
        except FileExistsError:
            pass
    return _REAL_RUN_FLOW(library, config, payload, verify, shm_threshold)


def _decision_fp(decision):
    best = decision.best
    return (
        None if best is None else (best.cluster.name,
                                   best.resource_set.name, best.objective,
                                   best.asic_cells),
        tuple(sorted((c.cluster.name, c.resource_set.name, c.objective)
                     for c in decision.candidates)),
        tuple(sorted(decision.rejections)),
        decision.up_utilization,
    )


@pytest.fixture(scope="module")
def app():
    return app_by_name("ckey")


@pytest.fixture(scope="module")
def serial_fp(app):
    with ExplorationEngine() as engine:
        return _decision_fp(engine.explore(app).decision)


@pytest.fixture(scope="module")
def sweep_inputs(app):
    """(partitioner, profile, initial) — the raw sweep() arguments."""
    library = cmos6_library()
    program = app.compile()
    interp = Interpreter(program)
    for name, values in app.globals_init.items():
        interp.set_global(name, values)
    interp.run(*app.args)
    image = link_program(program)
    from repro.power.system import evaluate_initial
    initial = evaluate_initial(
        image, library, args=app.args, globals_init=app.globals_init,
        icache_cfg=app.icache, dcache_cfg=app.dcache,
        model_caches=app.model_caches)
    config = app.config or PartitionConfig()
    return Partitioner(program, library, config), interp.profile, initial


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_string_and_iterable_agree(self):
        assert FaultPlan.parse("kill@0,hang@2") \
            == FaultPlan.parse(["kill@0", "hang@2"])
        assert FaultPlan.parse("kill@0").faults == ((0, "kill"),)
        assert FaultPlan.parse(" raise@4 , ").faults == ((4, "raise"),)

    @pytest.mark.parametrize("spec", ["explode@0", "kill", "kill@x",
                                      "kill@-1"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(spec)

    def test_action_fires_on_first_attempt_only_by_default(self):
        plan = FaultPlan.parse("raise@3")
        assert plan.action(3, 0) == "raise"
        assert plan.action(3, 1) is None
        assert plan.action(2, 0) is None

    def test_action_every_attempt_when_configured(self):
        plan = FaultPlan(faults=((1, "raise"),), first_attempt_only=False)
        assert plan.action(1, 0) == plan.action(1, 5) == "raise"

    def test_fire_raise_and_noop(self):
        plan = FaultPlan.parse("raise@0")
        with pytest.raises(FaultInjected):
            plan.fire(0, 0)
        plan.fire(0, 1)   # retried attempt: no fault
        plan.fire(99, 0)  # unscripted task: no fault

    def test_plan_is_picklable(self):
        import pickle
        plan = FaultPlan.parse("kill@0,hang@1", hang_s=7.5)
        assert pickle.loads(pickle.dumps(plan)) == plan


# ---------------------------------------------------------------------------
# Engine recovery paths (all must stay bit-identical to serial)
# ---------------------------------------------------------------------------

class TestEngineRecovery:
    def test_worker_raise_is_retried(self, app, serial_fp):
        tracer = Tracer("raise")
        with ExplorationEngine(jobs=2, retries=2, backoff_s=0.0,
                               fault_plan=FaultPlan.parse("raise@0"),
                               tracer=tracer) as engine:
            report = engine.explore(app)
        assert _decision_fp(report.decision) == serial_fp
        assert tracer.counters["explore.retry.attempts"] >= 1
        assert "explore.degraded" not in tracer.counters

    def test_worker_kill_rebuilds_pool_and_engine_stays_usable(
            self, app, serial_fp):
        tracer = Tracer("kill")
        engine = ExplorationEngine(jobs=2, retries=2, backoff_s=0.0,
                                   fault_plan=FaultPlan.parse("kill@0"),
                                   tracer=tracer)
        try:
            first = engine.explore(app)
            assert tracer.counters["explore.pool.rebuilds"] >= 1
            assert _decision_fp(first.decision) == serial_fp
            # The same engine must survive its broken pool: a second
            # sweep (cache cleared to force re-evaluation) still works.
            engine.cache.clear()
            engine.fault_plan = None
            second = engine.explore(app)
            assert _decision_fp(second.decision) == serial_fp
        finally:
            engine.close()

    def test_hung_worker_times_out_and_recovers(self, app, serial_fp):
        tracer = Tracer("hang")
        with ExplorationEngine(jobs=2, timeout=4.0, retries=2,
                               backoff_s=0.0,
                               fault_plan=FaultPlan.parse(
                                   "hang@1", hang_s=120.0),
                               tracer=tracer) as engine:
            report = engine.explore(app)
        assert _decision_fp(report.decision) == serial_fp
        assert tracer.counters["explore.timeouts"] >= 1
        assert tracer.counters["explore.pool.rebuilds"] >= 1

    def test_exhausted_retries_degrade_to_serial(self, app, serial_fp):
        plan = FaultPlan(faults=((0, "raise"), (1, "raise")),
                         first_attempt_only=False)
        tracer = Tracer("degrade")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ExplorationEngine(jobs=2, retries=1, backoff_s=0.0,
                                   fault_plan=plan,
                                   tracer=tracer) as engine:
                report = engine.explore(app)
        assert _decision_fp(report.decision) == serial_fp
        assert tracer.counters["explore.degraded"] == 2
        # Degraded pairs were still evaluated (serially) and cached.
        assert report.cache_stats["entries"] == report.decision.examined

    def test_jobs_without_app_warns_once_and_counts(self, sweep_inputs,
                                                    serial_fp):
        partitioner, profile, initial = sweep_inputs
        tracer = Tracer("no-app")
        engine = ExplorationEngine(jobs=2, tracer=tracer)
        try:
            with pytest.warns(RuntimeWarning, match="without an AppSpec"):
                decision = engine.sweep(partitioner, profile, initial)
            assert _decision_fp(decision) == serial_fp
            assert tracer.counters["explore.degraded"] \
                == decision.examined
            # Second degraded sweep: counted again, but not re-warned.
            engine.cache.clear()
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                engine.sweep(partitioner, profile, initial)
        finally:
            engine.close()

    def test_exit_propagates_exceptions_and_reaps_pool(self, app):
        engine = ExplorationEngine(jobs=2)
        with pytest.raises(RuntimeError, match="boom"):
            with engine:
                engine._ensure_pool()
                raise RuntimeError("boom")
        assert engine._pool is None
        engine.close()  # idempotent

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ExplorationEngine(timeout=0)
        with pytest.raises(ValueError):
            ExplorationEngine(retries=-1)
        with pytest.raises(ValueError):
            ExplorationEngine(max_pool_rebuilds=-1)

    def test_run_flows_survives_broken_pool(self, monkeypatch, tmp_path):
        """A worker dying mid-``run_flows`` degrades the missing flows to
        in-process recomputation instead of aborting the batch."""
        import repro.core.explore as explore_mod

        # Workers fork from this process, inheriting both the patched
        # module and the marker path; _lethal_run_flow is module-level so
        # the executor can pickle it by reference.
        monkeypatch.setattr(sys.modules[__name__], "_LETHAL_MARKER",
                            str(tmp_path / "killed-once"))
        monkeypatch.setattr(explore_mod, "_worker_run_flow",
                            _lethal_run_flow)
        apps = [app_by_name("ckey"), app_by_name("trick")]
        tracer = Tracer("flows")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ExplorationEngine(jobs=2, tracer=tracer) as engine:
                results = engine.run_flows(apps)
        assert set(results) == {"ckey", "trick"}
        assert tracer.counters["explore.pool.rebuilds"] >= 1
        assert all(r.initial is not None for r in results.values())


# ---------------------------------------------------------------------------
# Rejected outcomes are never memoized (verify.cache_rejected)
# ---------------------------------------------------------------------------

def _rejecting_verifier(outcome, library):
    report = VerificationReport(label="forced-reject")
    report.ran("core.accepted")
    report.add(Finding(check="core.accepted", severity=Severity.ERROR,
                       layer="core", message="injected rejection"))
    return report


class TestCacheRejected:
    def test_rejected_outcomes_not_memoized(self, app, monkeypatch):
        monkeypatch.setattr("repro.verify.verify_candidate",
                            _rejecting_verifier)
        tracer = Tracer("rejected")
        cache = EvaluationCache()
        with ExplorationEngine(cache=cache, verify=True,
                               tracer=tracer) as engine:
            report = engine.explore(app)
        # Every computed CandidateEvaluation was audited-ERROR: it still
        # reached the decision, but nothing may be memoized except the
        # schedule-rejection strings (which are never audited).
        rejected = tracer.counters["verify.cache_rejected"]
        assert rejected > 0
        assert len(cache) == report.decision.examined - rejected

    def test_rejected_outcomes_never_reach_the_journal(self, app, tmp_path,
                                                       monkeypatch):
        monkeypatch.setattr("repro.verify.verify_candidate",
                            _rejecting_verifier)
        journal = tmp_path / "cache.journal"
        tracer = Tracer("rejected-persistent")
        cache = PersistentEvaluationCache(str(journal))
        with ExplorationEngine(cache=cache, verify=True,
                               tracer=tracer) as engine:
            engine.explore(app)
        cache.close()
        rejected = tracer.counters["verify.cache_rejected"]
        assert rejected > 0
        scan = scan_journal(str(journal))
        assert scan["records"] == len(cache)
        assert not any(key is None for key in scan["keys"])


# ---------------------------------------------------------------------------
# PersistentEvaluationCache + SweepCheckpoint
# ---------------------------------------------------------------------------

class TestPersistentCache:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            cache.put("a", {"x": 1})
            cache.put("b", "schedule rejection")
        with PersistentEvaluationCache(path) as reloaded:
            assert reloaded.loaded == 2
            assert reloaded.corrupt == 0
            assert reloaded.get("a") == {"x": 1}
            assert reloaded.get("b") == "schedule rejection"

    def test_repeated_put_journals_once(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            cache.put("a", 1)
            cache.put("a", 2)  # in-memory update, no second record
        assert scan_journal(path)["records"] == 1

    def test_corrupt_tail_is_tolerated_and_truncated(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            for i in range(4):
                cache.put(f"k{i}", i)
        intact_size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\x13\x37torn-record")
        with PersistentEvaluationCache(path) as reloaded:
            assert reloaded.loaded == 4
            assert reloaded.corrupt == 1
        # The loader truncated the garbage so appends stay replayable.
        assert os.path.getsize(path) == intact_size

    def test_truncated_mid_record_keeps_prefix(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            for i in range(4):
                cache.put(f"k{i}", i)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 3)  # SIGKILL mid-write
        with PersistentEvaluationCache(path) as reloaded:
            assert reloaded.loaded == 3
            assert reloaded.corrupt == 1

    def test_foreign_file_is_reset(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with open(path, "wb") as fh:
            fh.write(b"not a journal at all")
        with PersistentEvaluationCache(path) as cache:
            assert cache.loaded == 0
            assert cache.corrupt == 1
            cache.put("fresh", 1)
        with open(path, "rb") as fh:
            assert fh.read(len(JOURNAL_MAGIC)) == JOURNAL_MAGIC

    def test_scan_journal_is_read_only(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            cache.put("k", 1)
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad")
        before = open(path, "rb").read()
        scan = scan_journal(path)
        assert scan == {"ok": True, "records": 1, "corrupt": 1,
                        "keys": ["k"], "bytes_good": scan["bytes_good"],
                        "bytes_total": len(before)}
        assert open(path, "rb").read() == before  # untouched

    def test_clear_resets_journal(self, tmp_path):
        path = str(tmp_path / "cache.journal")
        with PersistentEvaluationCache(path) as cache:
            cache.put("k", 1)
            cache.clear()
            cache.put("fresh", 2)
        with PersistentEvaluationCache(path) as reloaded:
            assert reloaded.loaded == 1
            assert reloaded.get("fresh") == 2
            assert reloaded.get("k") is None


class TestSweepCheckpoint:
    def test_bind_pins_context_and_rejects_mismatch(self, tmp_path, app):
        library = cmos6_library()
        ckpt = SweepCheckpoint(str(tmp_path / "ck"))
        context = ckpt.bind(app, library, app.config)
        assert context == checkpoint_context_key(app, library, app.config)
        ckpt.close()
        # Same triple binds again; a different app does not.
        again = SweepCheckpoint(str(tmp_path / "ck"))
        assert again.bind(app, library, app.config) == context
        with pytest.raises(CheckpointMismatch):
            again.bind(app_by_name("trick"), library, None)
        again.close()

    def test_resume_is_bit_identical_with_cache_hits(self, tmp_path, app,
                                                     serial_fp):
        directory = str(tmp_path / "ck")
        library = cmos6_library()
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind(app, library, app.config)
            with ExplorationEngine(cache=ckpt.cache) as engine:
                engine.explore(app)
        # "New process": fresh checkpoint, fresh engine, zero evaluations.
        tracer = Tracer("resume")
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind(app, library, app.config)
            with ExplorationEngine(cache=ckpt.cache,
                                   tracer=tracer) as engine:
                report = engine.explore(app)
        assert _decision_fp(report.decision) == serial_fp
        assert tracer.counters["explore.cache.hits"] \
            == report.decision.examined
        assert "explore.evaluated" not in tracer.counters

    def test_partial_checkpoint_resumes_the_remainder(self, tmp_path, app,
                                                      serial_fp):
        """A sweep killed mid-run resumes from the journaled prefix."""
        directory = str(tmp_path / "ck")
        library = cmos6_library()
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind(app, library, app.config)
            with ExplorationEngine(cache=ckpt.cache) as engine:
                engine.explore(app)
        # Simulate death after the second journal record: keep a prefix.
        journal = os.path.join(directory, "cache.journal")
        assert scan_journal(journal)["records"] >= 3
        from repro.core.checkpoint import _RECORD_HEADER
        with open(journal, "r+b") as fh:
            fh.seek(len(JOURNAL_MAGIC))
            for _ in range(2):
                length, _digest = _RECORD_HEADER.unpack(
                    fh.read(_RECORD_HEADER.size))
                fh.seek(length, os.SEEK_CUR)
            fh.truncate(fh.tell())
        tracer = Tracer("partial-resume")
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind(app, library, app.config)
            with ExplorationEngine(cache=ckpt.cache,
                                   tracer=tracer) as engine:
                report = engine.explore(app)
        assert _decision_fp(report.decision) == serial_fp
        assert tracer.counters["explore.cache.hits"] == 2
        assert tracer.counters["explore.cache.misses"] \
            == report.decision.examined - 2


# ---------------------------------------------------------------------------
# verify_checkpoint
# ---------------------------------------------------------------------------

class TestVerifyCheckpoint:
    @pytest.fixture()
    def bound_checkpoint(self, tmp_path, app):
        directory = str(tmp_path / "ck")
        library = cmos6_library()
        with SweepCheckpoint(directory) as ckpt:
            ckpt.bind(app, library, app.config)
            ckpt.cache.put("k", 1)
        return directory, checkpoint_context_key(app, library, app.config)

    def test_intact_checkpoint_passes(self, bound_checkpoint):
        directory, context = bound_checkpoint
        report = verify_checkpoint(directory, expected_context=context)
        assert not report.has_errors
        assert any(f.severity is Severity.INFO for f in report.findings)

    def test_missing_directory_is_an_error(self, tmp_path):
        report = verify_checkpoint(str(tmp_path / "absent"))
        assert report.has_errors

    def test_missing_metadata_is_an_error(self, bound_checkpoint):
        directory, _context = bound_checkpoint
        os.remove(os.path.join(directory, "checkpoint.json"))
        assert verify_checkpoint(directory).has_errors

    def test_context_mismatch_is_an_error(self, bound_checkpoint):
        directory, _context = bound_checkpoint
        report = verify_checkpoint(directory, expected_context="other")
        assert report.has_errors
        assert any("another workload" in f.message for f in report.findings)

    def test_corrupt_tail_is_a_warning_not_error(self, bound_checkpoint):
        directory, context = bound_checkpoint
        with open(os.path.join(directory, "cache.journal"), "ab") as fh:
            fh.write(b"\xba\xad")
        report = verify_checkpoint(directory, expected_context=context)
        assert not report.has_errors
        assert any(f.severity is Severity.WARNING for f in report.findings)

    def test_missing_journal_is_an_error(self, bound_checkpoint):
        directory, _context = bound_checkpoint
        os.remove(os.path.join(directory, "cache.journal"))
        assert verify_checkpoint(directory).has_errors

    def test_headerless_journal_is_an_error(self, bound_checkpoint):
        directory, _context = bound_checkpoint
        with open(os.path.join(directory, "cache.journal"), "wb") as fh:
            fh.write(b"garbage")
        assert verify_checkpoint(directory).has_errors


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestExploreCLI:
    def test_checkpoint_then_resume(self, capsys, tmp_path):
        directory = str(tmp_path / "ck")
        assert main(["explore", "ckey", "--checkpoint", directory]) == 0
        capsys.readouterr()
        assert main(["explore", "ckey", "--checkpoint", directory,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint intact" in out
        assert "explore.cache.hits" in out

    def test_fresh_checkpoint_discards_stale_state(self, capsys, tmp_path):
        directory = tmp_path / "ck"
        directory.mkdir()
        (directory / "checkpoint.json").write_text('{"app": "other"}')
        (directory / "cache.journal").write_bytes(b"stale")
        assert main(["explore", "ckey", "--checkpoint",
                     str(directory)]) == 0
        import json
        meta = json.loads((directory / "checkpoint.json").read_text())
        assert meta["app"] == "ckey"

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["explore", "ckey", "--resume"]) == 1
        assert "--resume requires" in capsys.readouterr().err

    def test_resume_refuses_wrong_app(self, capsys, tmp_path):
        directory = str(tmp_path / "ck")
        assert main(["explore", "ckey", "--checkpoint", directory]) == 0
        capsys.readouterr()
        assert main(["explore", "trick", "--checkpoint", directory,
                     "--resume"]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_bad_inject_fault_spec(self, capsys):
        assert main(["explore", "ckey", "--inject-fault", "nuke@0"]) == 1
        assert "bad --inject-fault" in capsys.readouterr().err


@pytest.mark.slow
def test_cli_acceptance_faulted_parallel_subprocess(tmp_path):
    """The issue's acceptance scenario end to end: injected kill + hang,
    ``--jobs 4 --timeout 5 --retries 2``, checkpointed, then resumed —
    both runs exit 0 and the resume replays everything as cache hits."""
    directory = str(tmp_path / "ck")
    src_dir = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p)
    base = [sys.executable, "-m", "repro", "explore", "ckey",
            "--checkpoint", directory]
    first = subprocess.run(
        base + ["--jobs", "4", "--timeout", "5", "--retries", "2",
                "--inject-fault", "kill@0", "--inject-fault", "hang@2"],
        capture_output=True, text=True, timeout=300, env=env)
    assert first.returncode == 0, first.stderr
    assert "explore.pool.rebuilds" in first.stdout
    resume = subprocess.run(
        base + ["--resume"],
        capture_output=True, text=True, timeout=300, env=env)
    assert resume.returncode == 0, resume.stderr
    assert "checkpoint intact" in resume.stdout
    assert "explore.cache.hits" in resume.stdout
    assert "explore.evaluated" not in resume.stdout

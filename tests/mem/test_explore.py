"""Cache-exploration tests (paper footnotes 2 and 4)."""

import pytest

from repro.isa.image import link_program
from repro.lang import compile_source
from repro.mem import (
    CacheConfig,
    best_point,
    default_search_space,
    explore_cache_configs,
    initial_evaluator,
)
from repro.mem.explore import partitioned_evaluator
from repro.sched.utilization import ClusterMetrics
from repro.synth.rtl_sim import AsicRunStats


SRC = """
global data: int[512];
func main() -> int {
    var s: int = 0;
    for p in 0 .. 4 {
        for i in 0 .. 512 { data[i] = data[i] + i; }
        for i in 0 .. 512 { s = s + data[i]; }
    }
    return s;
}
"""


@pytest.fixture(scope="module")
def image():
    return link_program(compile_source(SRC))


def test_search_space_shape():
    space = default_search_space()
    assert len(space) == 18
    for icache_cfg, dcache_cfg in space:
        assert isinstance(icache_cfg, CacheConfig)
        assert isinstance(dcache_cfg, CacheConfig)


def test_exploration_evaluates_every_point(image, library):
    evaluate = initial_evaluator(image, library)
    space = default_search_space()[:4]
    points = explore_cache_configs(evaluate, space)
    assert len(points) == 4
    results = {p.run.result for p in points}
    assert len(results) == 1  # functional result independent of caches


def test_bigger_caches_fewer_misses_but_more_per_access_energy(image, library):
    evaluate = initial_evaluator(image, library)
    small = evaluate(CacheConfig(size_bytes=512, line_bytes=16,
                                 associativity=2, miss_penalty=8),
                     CacheConfig(size_bytes=512, line_bytes=16,
                                 associativity=2, miss_penalty=8))
    big = evaluate(CacheConfig(size_bytes=8192, line_bytes=16,
                               associativity=2, miss_penalty=8),
                   CacheConfig(size_bytes=8192, line_bytes=16,
                               associativity=2, miss_penalty=8))
    assert big.icache_hit_rate >= small.icache_hit_rate
    assert big.up_cycles <= small.up_cycles


def test_best_point_minimizes_total_energy(image, library):
    evaluate = initial_evaluator(image, library)
    points = explore_cache_configs(evaluate, default_search_space()[:6])
    best = best_point(points)
    assert best.total_energy_nj == min(p.total_energy_nj for p in points)
    assert best.label  # human-readable


def test_best_point_empty_rejected():
    with pytest.raises(ValueError):
        best_point([])


def test_partitioned_design_prefers_different_caches(image, library):
    """Footnote 4's point: with the hot loops in hardware, the software
    side's optimal cache geometry changes (it never needs the big i-cache)."""
    from repro.cluster import decompose_into_clusters
    program = compile_source(SRC)
    clusters = [c for c in decompose_into_clusters(program, function="main")
                if c.kind == "loop" and c.depth == 0]
    hw_blocks = {("main", b) for c in clusters for b in c.blocks}

    stats = AsicRunStats(compute_cycles=5000, handshake_cycles=4,
                         transfer_cycles=100, invocations=1,
                         transfer_words_in=25, transfer_words_out=25)
    metrics = ClusterMetrics(total_cycles=5000, utilization=0.5,
                             utilization_size_weighted=0.4, geq=4000,
                             energy_estimate_nj=500.0,
                             energy_detailed_nj=900.0, clock_ns=12.0)
    evaluate_p = partitioned_evaluator(image, library, hw_blocks=hw_blocks,
                                       asic_stats=stats,
                                       asic_metrics=metrics, asic_cells=4000)
    evaluate_i = initial_evaluator(image, library)

    space = default_search_space()
    best_i = best_point(explore_cache_configs(evaluate_i, space))
    best_p = best_point(explore_cache_configs(evaluate_p, space))
    # The partitioned design's memory system consumes far less...
    assert (best_p.memory_system_energy_nj
            < 0.6 * best_i.memory_system_energy_nj)
    # ...and never wants a larger i-cache than the initial design does.
    assert best_p.icache.size_bytes <= best_i.icache.size_bytes

"""Cache-exploration tests (paper footnotes 2 and 4)."""

import pytest

from repro.isa.image import link_program
from repro.lang import compile_source
from repro.mem import (
    CacheConfig,
    best_point,
    default_search_space,
    explore_cache_configs,
    initial_evaluator,
)
from repro.mem.explore import partitioned_evaluator
from repro.sched.utilization import ClusterMetrics
from repro.synth.rtl_sim import AsicRunStats


SRC = """
global data: int[512];
func main() -> int {
    var s: int = 0;
    for p in 0 .. 4 {
        for i in 0 .. 512 { data[i] = data[i] + i; }
        for i in 0 .. 512 { s = s + data[i]; }
    }
    return s;
}
"""


@pytest.fixture(scope="module")
def image():
    return link_program(compile_source(SRC))


def test_search_space_shape():
    space = default_search_space()
    assert len(space) == 18
    for icache_cfg, dcache_cfg in space:
        assert isinstance(icache_cfg, CacheConfig)
        assert isinstance(dcache_cfg, CacheConfig)


def test_exploration_evaluates_every_point(image, library):
    evaluate = initial_evaluator(image, library)
    space = default_search_space()[:4]
    points = explore_cache_configs(evaluate, space)
    assert len(points) == 4
    results = {p.run.result for p in points}
    assert len(results) == 1  # functional result independent of caches


def test_bigger_caches_fewer_misses_but_more_per_access_energy(image, library):
    evaluate = initial_evaluator(image, library)
    small = evaluate(CacheConfig(size_bytes=512, line_bytes=16,
                                 associativity=2, miss_penalty=8),
                     CacheConfig(size_bytes=512, line_bytes=16,
                                 associativity=2, miss_penalty=8))
    big = evaluate(CacheConfig(size_bytes=8192, line_bytes=16,
                               associativity=2, miss_penalty=8),
                   CacheConfig(size_bytes=8192, line_bytes=16,
                               associativity=2, miss_penalty=8))
    assert big.icache_hit_rate >= small.icache_hit_rate
    assert big.up_cycles <= small.up_cycles


def test_best_point_minimizes_total_energy(image, library):
    evaluate = initial_evaluator(image, library)
    points = explore_cache_configs(evaluate, default_search_space()[:6])
    best = best_point(points)
    assert best.total_energy_nj == min(p.total_energy_nj for p in points)
    assert best.label  # human-readable


def test_best_point_empty_rejected():
    with pytest.raises(ValueError):
        best_point([])


def test_partitioned_design_prefers_different_caches(image, library):
    """Footnote 4's point: with the hot loops in hardware, the software
    side's optimal cache geometry changes (it never needs the big i-cache)."""
    from repro.cluster import decompose_into_clusters
    program = compile_source(SRC)
    clusters = [c for c in decompose_into_clusters(program, function="main")
                if c.kind == "loop" and c.depth == 0]
    hw_blocks = {("main", b) for c in clusters for b in c.blocks}

    stats = AsicRunStats(compute_cycles=5000, handshake_cycles=4,
                         transfer_cycles=100, invocations=1,
                         transfer_words_in=25, transfer_words_out=25)
    metrics = ClusterMetrics(total_cycles=5000, utilization=0.5,
                             utilization_size_weighted=0.4, geq=4000,
                             energy_estimate_nj=500.0,
                             energy_detailed_nj=900.0, clock_ns=12.0)
    evaluate_p = partitioned_evaluator(image, library, hw_blocks=hw_blocks,
                                       asic_stats=stats,
                                       asic_metrics=metrics, asic_cells=4000)
    evaluate_i = initial_evaluator(image, library)

    space = default_search_space()
    best_i = best_point(explore_cache_configs(evaluate_i, space))
    best_p = best_point(explore_cache_configs(evaluate_p, space))
    # The partitioned design's memory system consumes far less...
    assert (best_p.memory_system_energy_nj
            < 0.6 * best_i.memory_system_energy_nj)
    # ...and never wants a larger i-cache than the initial design does.
    assert best_p.icache.size_bytes <= best_i.icache.size_bytes


def test_sweep_is_deterministic_point_for_point(image, library):
    """Two independent sweeps over the same space are bit-identical —
    the property the EvaluationCache and the verifier both lean on."""
    space = default_search_space()[:6]
    first = explore_cache_configs(initial_evaluator(image, library), space)
    second = explore_cache_configs(initial_evaluator(image, library), space)
    assert len(first) == len(second) == 6
    for a, b in zip(first, second):
        assert (a.icache, a.dcache) == (b.icache, b.dcache)
        assert a.total_energy_nj == b.total_energy_nj
        assert a.run.up_cycles == b.run.up_cycles
        assert a.run.icache_hit_rate == b.run.icache_hit_rate
        assert a.run.stats.icache == b.run.stats.icache
        assert a.run.stats.dcache == b.run.stats.dcache


def test_verifier_accepts_genuine_sweep_points(image, library):
    from repro.verify import verify_system_run

    points = explore_cache_configs(initial_evaluator(image, library),
                                   default_search_space()[:3])
    for point in points:
        report = verify_system_run(point.run, library=library)
        errors = [f.format() for f in report.errors]
        assert not errors, errors
        assert "mem.cache_accounting" in report.checks_run


def test_verifier_catches_seeded_cache_accounting_fault(image, library):
    """Seeded fault: corrupt one counter of a sweep point's d-cache
    snapshot and the verifier must localize it to mem.cache_accounting
    with the paper's footnote-2 reference (and flag the traffic
    re-derivation that depends on the same counter)."""
    import dataclasses

    from repro.verify import Severity, verify_system_run
    from repro.verify.checks import CHECKS

    point = explore_cache_configs(initial_evaluator(image, library),
                                  default_search_space()[:1])[0]
    run = point.run
    dcache = dataclasses.replace(run.stats.dcache,
                                 read_misses=run.stats.dcache.read_misses + 1)
    corrupted = dataclasses.replace(
        run, stats=dataclasses.replace(run.stats, dcache=dcache))

    report = verify_system_run(corrupted, library=library)
    fired = [f for f in report.findings
             if f.check == "mem.cache_accounting"
             and f.severity is Severity.ERROR]
    assert fired, [f.format() for f in report.findings]
    assert all(f.paper_ref == CHECKS["mem.cache_accounting"].paper_ref
               for f in fired)
    # read_misses feeds the memory-traffic re-derivation too.
    assert any(f.check == "mem.traffic" and f.severity is Severity.ERROR
               for f in report.findings)

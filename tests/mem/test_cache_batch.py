"""Differential suite: batched cache kernel vs the scalar reference.

Every test drives the same trace through the scalar ``Cache.access``
loop and the batched kernel (numpy-vectorized and pure-Python chunked
fallback) and requires **bit-identical** results: every independently
counted :class:`CacheStats` field, the derived stall/memory-traffic
numbers, and the final MRU tag-store state (``set_contents()``).
"""

import random

import pytest

from repro.mem.cache import Cache, CacheConfig
from repro.mem.cache_batch import (
    BatchCache,
    DEFAULT_CHUNK_EVENTS,
    replay_batch,
)
from repro.mem import cache_batch
from repro.mem.profiler import MEM_ENGINES, profile_configs, replay
from repro.mem.trace import Access, MemoryTrace
from repro.obs import Tracer, use_tracer

HAVE_NUMPY = cache_batch._np is not None

ENGINES = ([True] if HAVE_NUMPY else []) + [False]

#: The fuzz oracle's cache geometries (repro.fuzz CACHE_GEOMETRIES)
#: plus degenerate shapes: two-set and single-set caches stress the
#: chunk-boundary carried-state fixups hardest.
GEOMETRIES = [
    (CacheConfig(2048, 16, 2, 8), CacheConfig(1024, 16, 2, 8)),
    (CacheConfig(512, 16, 1, 6), CacheConfig(256, 16, 1, 6)),
    (CacheConfig(256, 8, 4, 12), CacheConfig(128, 8, 4, 12)),
    (CacheConfig(64, 16, 2, 8), CacheConfig(32, 16, 2, 8)),
    (CacheConfig(16, 16, 1, 8), CacheConfig(64, 16, 4, 8)),
]


def scalar_replay(trace, icfg, dcfg):
    """The reference model: one Cache.access per event."""
    icache, dcache = Cache(icfg, "icache"), Cache(dcfg, "dcache")
    for kind, address in trace:
        if kind is Access.IFETCH:
            icache.access(address)
        elif kind is Access.READ:
            dcache.access(address)
        else:
            dcache.access(address, is_write=True)
    return icache, dcache


def assert_identical(reference, batched):
    assert batched.snapshot() == reference.snapshot()
    assert batched.set_contents() == reference.set_contents()


def fuzz_trace(seed, count, kinds=(Access.IFETCH,) * 4 + (Access.READ,) * 2
               + (Access.WRITE,)):
    """A seeded trace mixing loop-like locality with random conflicts."""
    rng = random.Random(seed)
    events = []
    pc = 0
    for _ in range(count):
        kind = rng.choice(kinds)
        if kind is Access.IFETCH and rng.random() < 0.8:
            # mostly sequential fetch with occasional branches
            pc = (pc + 4) & 0xFFFC if rng.random() < 0.9 else \
                rng.randrange(0, 0x4000) & 0xFFFC
            address = pc
        else:
            base = rng.choice([0, 0x400, 0x10000])
            span = rng.choice([64, 2048, 65536])
            address = (base + rng.randrange(0, span)) & 0xFFFFFC
        events.append((kind, address))
    return MemoryTrace(events=events)


# ---------------------------------------------------------------------------
# Differential: fuzz traces x geometries x chunk boundaries x engines
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("vectorized", ENGINES)
@pytest.mark.parametrize("geometry", range(len(GEOMETRIES)))
def test_fuzz_traces_bit_identical(geometry, vectorized):
    icfg, dcfg = GEOMETRIES[geometry]
    for seed in range(3):
        trace = fuzz_trace(seed, 4000)
        ref_i, ref_d = scalar_replay(trace, icfg, dcfg)
        for chunk in (1, 7, 997, DEFAULT_CHUNK_EVENTS):
            icache, dcache = replay_batch(trace, icfg, dcfg,
                                          chunk_events=chunk,
                                          vectorized=vectorized)
            assert_identical(ref_i, icache)
            assert_identical(ref_d, dcache)


@pytest.mark.parametrize("vectorized", ENGINES)
def test_chunk_boundary_edge_cases(vectorized):
    icfg, dcfg = GEOMETRIES[0]
    trace = fuzz_trace(42, 100)
    ref_i, ref_d = scalar_replay(trace, icfg, dcfg)
    # chunk size 1, chunk exactly the trace, chunk larger than the trace
    for chunk in (1, len(trace), len(trace) + 13, 10 ** 9):
        icache, dcache = replay_batch(trace, icfg, dcfg, chunk_events=chunk,
                                      vectorized=vectorized)
        assert_identical(ref_i, icache)
        assert_identical(ref_d, dcache)


@pytest.mark.parametrize("vectorized", ENGINES)
def test_empty_trace(vectorized):
    icfg, dcfg = GEOMETRIES[0]
    icache, dcache = replay_batch(MemoryTrace(), icfg, dcfg,
                                  vectorized=vectorized)
    assert icache.accesses == 0 and dcache.accesses == 0
    assert icache.set_contents() == Cache(icfg).set_contents()


@pytest.mark.parametrize("vectorized", ENGINES)
@pytest.mark.parametrize("kinds", [
    (Access.IFETCH,),            # read-only i-stream (vector fast path)
    (Access.READ,),              # read-only d-stream
    (Access.WRITE,),             # write-only (no-write-allocate only)
    (Access.READ, Access.WRITE),
])
def test_single_kind_streams(kinds, vectorized):
    for icfg, dcfg in GEOMETRIES[:3]:
        trace = fuzz_trace(7, 1500, kinds=kinds)
        ref_i, ref_d = scalar_replay(trace, icfg, dcfg)
        icache, dcache = replay_batch(trace, icfg, dcfg, chunk_events=64,
                                      vectorized=vectorized)
        assert_identical(ref_i, icache)
        assert_identical(ref_d, dcache)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
@pytest.mark.parametrize("assoc,size", [(1, 32), (2, 64)])
def test_carried_state_across_chunks_lru2(assoc, size):
    """Adversarial cross-chunk sequences for the closed-form read path.

    Tiny caches (1-2 sets) with chunk sizes 1..8 force every run to
    interact with carried per-set state, including the tricky case
    where a chunk's first run hits the carried MRU and the second run
    must then hit the carried LRU.
    """
    cfg = CacheConfig(size, 16, assoc, 8)
    lines = [0x000, 0x010, 0x020, 0x030, 0x100, 0x110]
    rng = random.Random(assoc)
    for trial in range(20):
        events = [(Access.IFETCH, rng.choice(lines) + 4 * rng.randrange(4))
                  for _ in range(40)]
        # Explicit MRU-hit-then-LRU-hit pattern at every boundary parity:
        events += [(Access.IFETCH, a) for a in
                   (0x000, 0x010, 0x000, 0x000, 0x010, 0x020, 0x010, 0x020)]
        trace = MemoryTrace(events=events)
        reference = Cache(cfg)
        for _, address in trace:
            reference.access(address)
        for chunk in range(1, 9):
            batch = BatchCache(cfg)
            for start in range(0, len(events), chunk):
                import numpy as np
                addresses = np.array(
                    [a for _, a in events[start:start + chunk]],
                    dtype=np.int64)
                batch.consume_vector(addresses)
            assert_identical(reference, batch.finish())


def test_golden_digs_trace_bit_identical(digs_trace):
    """The batched kernel reproduces a real application's golden trace."""
    icfg, dcfg = CacheConfig(2048, 16, 2, 8), CacheConfig(1024, 16, 2, 8)
    reference = replay(digs_trace, icfg, dcfg, engine="reference")
    for vectorized in ENGINES:
        icache, dcache = replay_batch(digs_trace, icfg, dcfg,
                                      vectorized=vectorized)
        assert_identical(reference.icache, icache)
        assert_identical(reference.dcache, dcache)


@pytest.fixture(scope="module")
def digs_trace():
    from repro.apps import app_by_name
    from repro.isa.image import link_program
    from repro.power.system import evaluate_initial
    from repro.tech.library import cmos6_library

    app = app_by_name("digs")
    run = evaluate_initial(link_program(app.compile()), cmos6_library(),
                           args=app.args, globals_init=app.globals_init,
                           collect_trace=True)
    return run.stats.trace


# ---------------------------------------------------------------------------
# Profiler engine selector
# ---------------------------------------------------------------------------

def test_replay_engines_identical():
    icfg, dcfg = GEOMETRIES[0]
    trace = fuzz_trace(3, 3000)
    reference = replay(trace, icfg, dcfg, engine="reference")
    for engine in ("auto", "batch"):
        profile = replay(trace, icfg, dcfg, engine=engine)
        assert_identical(reference.icache, profile.icache)
        assert_identical(reference.dcache, profile.dcache)
        assert profile.stall_cycles == reference.stall_cycles
        assert profile.memory_word_reads == reference.memory_word_reads
        assert profile.memory_word_writes == reference.memory_word_writes


def test_replay_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        replay(MemoryTrace(), GEOMETRIES[0][0], GEOMETRIES[0][1],
               engine="warp")
    assert MEM_ENGINES == ("auto", "batch", "reference")


def test_profile_configs_engine_passthrough():
    trace = fuzz_trace(9, 800)
    space = GEOMETRIES[:2]
    batched = profile_configs(trace, space, engine="batch")
    reference = profile_configs(trace, space, engine="reference")
    for got, want in zip(batched, reference):
        assert got.icache.snapshot() == want.icache.snapshot()
        assert got.dcache.snapshot() == want.dcache.snapshot()
        assert got.stall_cycles == want.stall_cycles


def test_explore_cache_profiles_sweep():
    from repro.mem.explore import default_search_space, explore_cache_profiles

    trace = fuzz_trace(11, 500)
    profiles = explore_cache_profiles(trace)
    assert len(profiles) == len(default_search_space())
    reference = explore_cache_profiles(trace, engine="reference")
    for got, want in zip(profiles, reference):
        assert got.icache.snapshot() == want.icache.snapshot()
        assert got.stall_cycles == want.stall_cycles


# ---------------------------------------------------------------------------
# Fallback gating and observability
# ---------------------------------------------------------------------------

def test_replay_batch_rejects_bad_chunk():
    with pytest.raises(ValueError, match="chunk_events"):
        replay_batch(MemoryTrace(), GEOMETRIES[0][0], GEOMETRIES[0][1],
                     chunk_events=0)


def test_counters_emitted():
    tracer = Tracer()
    trace = fuzz_trace(5, 100)
    with use_tracer(tracer):
        replay_batch(trace, *GEOMETRIES[0], chunk_events=30)
    assert tracer.counters["mem.batch.replays"] == 1
    assert tracer.counters["mem.batch.chunks"] == 4
    assert tracer.counters["mem.batch.events"] == 100
    assert "mem.batch.fallback" not in tracer.counters or not HAVE_NUMPY


def test_fallback_counter_and_no_numpy_path(monkeypatch):
    """With numpy gone the kernel must fall back, stay bit-identical,
    and say so on the mem.batch.fallback counter."""
    monkeypatch.setattr(cache_batch, "_np", None)
    icfg, dcfg = GEOMETRIES[0]
    trace = fuzz_trace(6, 2000)
    ref_i, ref_d = scalar_replay(trace, icfg, dcfg)
    tracer = Tracer()
    with use_tracer(tracer):
        icache, dcache = replay_batch(trace, icfg, dcfg, chunk_events=128)
    assert_identical(ref_i, icache)
    assert_identical(ref_d, dcache)
    assert tracer.counters["mem.batch.fallback"] == 1
    with pytest.raises(RuntimeError, match="numpy"):
        replay_batch(trace, icfg, dcfg, vectorized=True)

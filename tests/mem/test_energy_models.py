"""Cache/memory/bus energy model tests."""

import pytest

from repro.mem.bus import SharedBus
from repro.mem.cache import Cache, CacheConfig
from repro.mem.cache_energy import CacheEnergyModel
from repro.mem.main_memory import MainMemory


# ---------------------------------------------------------------------------
# Cache energy
# ---------------------------------------------------------------------------

def test_read_access_energy_in_nanojoule_range(library):
    cfg = CacheConfig(size_bytes=2048, line_bytes=16, associativity=2)
    model = CacheEnergyModel(library, cfg)
    assert 0.3 <= model.read_access_nj <= 10.0


def test_write_cheaper_than_read(library):
    cfg = CacheConfig(size_bytes=2048, line_bytes=16, associativity=2)
    model = CacheEnergyModel(library, cfg)
    assert model.write_access_nj < model.read_access_nj


def test_higher_associativity_costs_more_per_read(library):
    direct = CacheEnergyModel(library, CacheConfig(
        size_bytes=2048, line_bytes=16, associativity=1))
    four_way = CacheEnergyModel(library, CacheConfig(
        size_bytes=2048, line_bytes=16, associativity=4))
    assert four_way.read_access_nj > direct.read_access_nj


def test_longer_lines_cost_more_per_read(library):
    short = CacheEnergyModel(library, CacheConfig(
        size_bytes=2048, line_bytes=16, associativity=2))
    long_ = CacheEnergyModel(library, CacheConfig(
        size_bytes=2048, line_bytes=64, associativity=2))
    assert long_.read_access_nj > short.read_access_nj


def test_energy_accumulates_with_traffic(library):
    cfg = CacheConfig(size_bytes=512, line_bytes=16, associativity=2)
    model = CacheEnergyModel(library, cfg)
    cache = Cache(cfg)
    for addr in range(0, 1024, 4):
        cache.access(addr)
    energy = model.energy_nj(cache)
    expected = (cache.reads * model.read_access_nj
                + cache.fills * model.fill_nj)
    assert energy == pytest.approx(expected)
    assert energy > 0


def test_zero_traffic_zero_energy(library):
    cfg = CacheConfig()
    assert CacheEnergyModel(library, cfg).energy_nj(Cache(cfg)) == 0.0


# ---------------------------------------------------------------------------
# Main memory
# ---------------------------------------------------------------------------

def test_memory_refill_counts_line_words(library):
    mem = MainMemory(library)
    mem.refill(4)
    mem.refill(4)
    assert mem.word_reads == 8


def test_memory_energy(library):
    mem = MainMemory(library)
    mem.read_word()
    mem.write_word()
    expected = library.mem_read_energy_nj + library.mem_write_energy_nj
    assert mem.energy_nj() == pytest.approx(expected)


def test_memory_write_dearer_than_read(library):
    assert library.mem_write_energy_nj > library.mem_read_energy_nj


def test_memory_reset(library):
    mem = MainMemory(library)
    mem.refill(8)
    mem.reset()
    assert mem.accesses == 0


# ---------------------------------------------------------------------------
# Shared bus
# ---------------------------------------------------------------------------

def test_bus_counts_and_energy(library):
    bus = SharedBus(library)
    bus.read_words(3)
    bus.write_words(2)
    assert bus.transfers == 5
    expected = (3 * library.bus_read_energy_nj
                + 2 * library.bus_write_energy_nj)
    assert bus.energy_nj() == pytest.approx(expected)


def test_bus_read_write_differ(library):
    # Paper footnote 9: reads and writes imply different energies.
    assert library.bus_read_energy_nj != library.bus_write_energy_nj


def test_bus_negative_count_rejected(library):
    bus = SharedBus(library)
    with pytest.raises(ValueError):
        bus.read_words(-1)
    with pytest.raises(ValueError):
        bus.write_words(-5)


def test_bus_hypothetical_pricing_does_not_record(library):
    bus = SharedBus(library)
    price = bus.transfer_energy_nj(10, 10)
    assert price > 0
    assert bus.transfers == 0


def test_bus_reset(library):
    bus = SharedBus(library)
    bus.write_words(7)
    bus.reset()
    assert bus.transfers == 0
    assert bus.energy_nj() == 0.0

"""Trace tool + trace-driven cache profiler tests.

The headline property: replaying a captured trace through the profiler
must reproduce the inline cache simulation of the ISS exactly — same hit
rates, same stall cycles, same memory traffic.
"""

import io

import pytest

from repro.isa.image import link_program
from repro.isa.simulator import Simulator
from repro.lang import compile_source
from repro.mem import (
    Access,
    Cache,
    CacheConfig,
    MainMemory,
    MemoryTrace,
    best_profile,
    profile_configs,
    replay,
)
from repro.tech import cmos6_library


# ---------------------------------------------------------------------------
# Trace container
# ---------------------------------------------------------------------------

def test_record_and_counts():
    trace = MemoryTrace()
    trace.record(Access.IFETCH, 0x0)
    trace.record(Access.READ, 0x100)
    trace.record(Access.READ, 0x104)
    trace.record(Access.WRITE, 0x100)
    assert len(trace) == 4
    assert trace.counts() == (1, 2, 1)


def test_footprint():
    trace = MemoryTrace()
    for address in (0x0, 0x1, 0x2, 0x3, 0x4):
        trace.record(Access.READ, address)
    assert trace.footprint_bytes(granularity=4) == 8  # two words
    with pytest.raises(ValueError):
        trace.footprint_bytes(granularity=0)


def test_dump_load_roundtrip():
    trace = MemoryTrace()
    trace.record(Access.IFETCH, 0x40)
    trace.record(Access.WRITE, 0xFFF0)
    buffer = io.StringIO()
    trace.dump(buffer)
    buffer.seek(0)
    loaded = MemoryTrace.load(buffer)
    assert loaded.events == trace.events


def test_load_with_comments_and_blanks():
    text = "# header\n\ni 0x40  # fetch\nr 0x100\nW 0x104\n"
    trace = MemoryTrace.load(io.StringIO(text))
    assert trace.counts() == (1, 1, 1)


def test_load_rejects_garbage():
    with pytest.raises(ValueError):
        MemoryTrace.load(io.StringIO("x 0x40\n"))
    with pytest.raises(ValueError):
        MemoryTrace.load(io.StringIO("r notanumber\n"))


# ---------------------------------------------------------------------------
# Profiler vs inline simulation equivalence
# ---------------------------------------------------------------------------

SRC = """
global data: int[256];
func main() -> int {
    var s: int = 0;
    for p in 0 .. 3 {
        for i in 0 .. 256 { data[i] = data[i] + i; }
        for i in 0 .. 256 { s = s + data[(i * 7) & 255]; }
    }
    return s;
}
"""


@pytest.fixture(scope="module")
def captured():
    library = cmos6_library()
    image = link_program(compile_source(SRC))
    icfg = CacheConfig(size_bytes=1024, line_bytes=16, associativity=2,
                       miss_penalty=8)
    dcfg = CacheConfig(size_bytes=512, line_bytes=16, associativity=2,
                       miss_penalty=8)
    trace = MemoryTrace()
    icache, dcache = Cache(icfg, "i"), Cache(dcfg, "d")
    memory = MainMemory(library)
    sim = Simulator(image, library, icache=icache, dcache=dcache,
                    memory_model=memory, trace=trace)
    result = sim.run()
    return trace, icfg, dcfg, icache, dcache, memory, result


def test_trace_captured_every_reference(captured):
    trace, icfg, dcfg, icache, dcache, memory, result = captured
    fetches, reads, writes = trace.counts()
    assert fetches == result.instructions
    assert reads == dcache.reads
    assert writes == dcache.writes


def test_replay_matches_inline_simulation(captured):
    trace, icfg, dcfg, icache, dcache, memory, result = captured
    profile = replay(trace, icfg, dcfg)
    assert profile.icache.reads == icache.reads
    assert profile.icache.read_misses == icache.read_misses
    assert profile.dcache.reads == dcache.reads
    assert profile.dcache.read_misses == dcache.read_misses
    assert profile.dcache.write_misses == dcache.write_misses
    assert profile.stall_cycles == result.stall_cycles
    assert profile.memory_word_reads == memory.word_reads
    assert profile.memory_word_writes == memory.word_writes


def test_replay_energy_matches_inline_models(captured, library):
    from repro.mem import CacheEnergyModel
    trace, icfg, dcfg, icache, dcache, memory, result = captured
    profile = replay(trace, icfg, dcfg)
    inline = (CacheEnergyModel(library, icfg).energy_nj(icache)
              + CacheEnergyModel(library, dcfg).energy_nj(dcache))
    assert profile.cache_energy_nj(library) == pytest.approx(inline)
    assert profile.memory_energy_nj(library) == pytest.approx(
        memory.energy_nj())


def test_profile_many_configs_single_trace(captured, library):
    trace = captured[0]
    space = [
        (CacheConfig(size_bytes=s, line_bytes=16, associativity=a,
                     miss_penalty=8),
         CacheConfig(size_bytes=s // 2, line_bytes=16, associativity=a,
                     miss_penalty=8))
        for s in (1024, 2048, 4096) for a in (1, 2)
    ]
    profiles = profile_configs(trace, space)
    assert len(profiles) == 6
    # Bigger caches never miss more on the same trace.
    by_assoc = {}
    for profile in profiles:
        key = profile.icache_cfg.associativity
        by_assoc.setdefault(key, []).append(profile)
    for group in by_assoc.values():
        group.sort(key=lambda p: p.icache_cfg.size_bytes)
        misses = [p.icache.read_misses for p in group]
        assert misses == sorted(misses, reverse=True)


def test_best_profile_minimizes_memsys_energy(captured, library):
    trace = captured[0]
    space = [
        (CacheConfig(size_bytes=s, line_bytes=16, associativity=2,
                     miss_penalty=8),
         CacheConfig(size_bytes=512, line_bytes=16, associativity=2,
                     miss_penalty=8))
        for s in (512, 2048, 8192)
    ]
    profiles = profile_configs(trace, space)
    best = best_profile(profiles, library)
    energies = [p.cache_energy_nj(library) + p.memory_energy_nj(library)
                for p in profiles]
    assert (best.cache_energy_nj(library)
            + best.memory_energy_nj(library)) == min(energies)


def test_best_profile_empty_rejected(library):
    with pytest.raises(ValueError):
        best_profile([], library)


def test_hardware_shadow_references_not_traced():
    """In a partitioned run the cluster's references must not appear in the
    software-side trace."""
    library = cmos6_library()
    program = compile_source(SRC)
    image = link_program(program)
    from repro.cluster import decompose_into_clusters
    loops = [c for c in decompose_into_clusters(program, function="main")
             if c.kind == "loop" and c.depth == 1]
    hw_blocks = {("main", b) for b in loops[0].blocks}

    full_trace = MemoryTrace()
    Simulator(image, library, trace=full_trace).run()
    part_trace = MemoryTrace()
    Simulator(image, library, trace=part_trace, hw_blocks=hw_blocks).run()
    assert len(part_trace) < len(full_trace)

"""Cache simulator unit tests."""

import pytest

from repro.mem.cache import Cache, CacheConfig


def make(size=256, line=16, assoc=2, penalty=8):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line,
                             associativity=assoc, miss_penalty=penalty))


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------

def test_geometry():
    cfg = CacheConfig(size_bytes=1024, line_bytes=16, associativity=2)
    assert cfg.num_sets == 32
    assert cfg.line_words == 4
    assert cfg.offset_bits == 4
    assert cfg.index_bits == 5
    assert cfg.tag_bits == 24 - 5 - 4


def test_direct_mapped_geometry():
    cfg = CacheConfig(size_bytes=512, line_bytes=32, associativity=1)
    assert cfg.num_sets == 16


def test_single_set_cache():
    cfg = CacheConfig(size_bytes=64, line_bytes=16, associativity=4)
    assert cfg.num_sets == 1
    cache = Cache(cfg)
    assert not cache.access(0x0)
    assert cache.access(0x0)


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=100, line_bytes=16, associativity=2)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, line_bytes=12, associativity=2)


def test_non_power_of_two_sets_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=96, line_bytes=16, associativity=2)


# ---------------------------------------------------------------------------
# Hit/miss behaviour
# ---------------------------------------------------------------------------

def test_cold_miss_then_hit():
    cache = make()
    assert cache.access(0x100) is False
    assert cache.access(0x100) is True
    assert cache.read_misses == 1
    assert cache.reads == 2


def test_same_line_different_word_hits():
    cache = make(line=16)
    cache.access(0x100)
    assert cache.access(0x10C) is True


def test_adjacent_lines_are_independent():
    cache = make(line=16)
    cache.access(0x100)
    assert cache.access(0x110) is False


def test_lru_eviction_order():
    # 2-way: fill both ways, touch the first, then insert a third line --
    # the second (LRU) way must be the victim.
    cache = make(size=64, line=16, assoc=2)  # 2 sets
    set_stride = 32  # lines mapping to set 0: addresses 0, 32, 64...
    a, b, c = 0x0, 0x40, 0x80  # all map to set 0 (offset 4 bits, index 1 bit)
    cache.access(a)
    cache.access(b)
    cache.access(a)          # a becomes MRU
    cache.access(c)          # evicts b
    assert cache.access(a) is True
    assert cache.access(b) is False


def test_write_through_hit_updates_lru():
    cache = make(size=64, line=16, assoc=2)
    a, b, c = 0x0, 0x40, 0x80
    cache.access(a)
    cache.access(b)
    cache.access(a, is_write=True)   # write hit promotes a
    cache.access(c)                  # evicts b, not a
    assert cache.access(a) is True


def test_write_miss_does_not_allocate():
    cache = make()
    assert cache.access(0x200, is_write=True) is False
    assert cache.access(0x200) is False  # still not cached
    assert cache.write_misses == 1
    assert cache.fills == 1  # only the read allocated


def test_associativity_respected():
    # 4 distinct lines in a 2-way set always conflict.
    cache = make(size=64, line=16, assoc=2)
    lines = [0x0, 0x40, 0x80, 0xC0]
    for _ in range(3):
        for addr in lines:
            cache.access(addr)
    # With LRU and a cyclic pattern of 4 lines in 2 ways: all misses.
    assert cache.read_misses == 12


def test_hit_rate_and_counters():
    cache = make()
    for _ in range(10):
        cache.access(0x0)
    assert cache.hit_rate == pytest.approx(0.9)
    assert cache.accesses == 10
    assert cache.misses == 1


def test_hit_rate_empty_cache_is_one():
    assert make().hit_rate == 1.0


def test_reset_clears_contents_and_stats():
    cache = make()
    cache.access(0x0)
    cache.reset()
    assert cache.accesses == 0
    assert cache.access(0x0) is False  # contents gone


def test_sequential_scan_miss_rate_matches_line_size():
    cache = make(size=8192, line=16)
    for addr in range(0, 4096, 4):
        cache.access(addr)
    # One miss per 16-byte line.
    assert cache.read_misses == 4096 // 16

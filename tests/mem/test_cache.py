"""Cache simulator unit tests."""

import pytest

from repro.mem.cache import Cache, CacheConfig


def make(size=256, line=16, assoc=2, penalty=8):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line,
                             associativity=assoc, miss_penalty=penalty))


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------

def test_geometry():
    cfg = CacheConfig(size_bytes=1024, line_bytes=16, associativity=2)
    assert cfg.num_sets == 32
    assert cfg.line_words == 4
    assert cfg.offset_bits == 4
    assert cfg.index_bits == 5
    assert cfg.tag_bits == 24 - 5 - 4


def test_direct_mapped_geometry():
    cfg = CacheConfig(size_bytes=512, line_bytes=32, associativity=1)
    assert cfg.num_sets == 16


def test_single_set_cache():
    cfg = CacheConfig(size_bytes=64, line_bytes=16, associativity=4)
    assert cfg.num_sets == 1
    cache = Cache(cfg)
    assert not cache.access(0x0)
    assert cache.access(0x0)


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=100, line_bytes=16, associativity=2)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1024, line_bytes=12, associativity=2)


def test_non_power_of_two_sets_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=96, line_bytes=16, associativity=2)


# ---------------------------------------------------------------------------
# Hit/miss behaviour
# ---------------------------------------------------------------------------

def test_cold_miss_then_hit():
    cache = make()
    assert cache.access(0x100) is False
    assert cache.access(0x100) is True
    assert cache.read_misses == 1
    assert cache.reads == 2


def test_same_line_different_word_hits():
    cache = make(line=16)
    cache.access(0x100)
    assert cache.access(0x10C) is True


def test_adjacent_lines_are_independent():
    cache = make(line=16)
    cache.access(0x100)
    assert cache.access(0x110) is False


def test_lru_eviction_order():
    # 2-way: fill both ways, touch the first, then insert a third line --
    # the second (LRU) way must be the victim.
    cache = make(size=64, line=16, assoc=2)  # 2 sets
    set_stride = 32  # lines mapping to set 0: addresses 0, 32, 64...
    a, b, c = 0x0, 0x40, 0x80  # all map to set 0 (offset 4 bits, index 1 bit)
    cache.access(a)
    cache.access(b)
    cache.access(a)          # a becomes MRU
    cache.access(c)          # evicts b
    assert cache.access(a) is True
    assert cache.access(b) is False


def test_write_through_hit_updates_lru():
    cache = make(size=64, line=16, assoc=2)
    a, b, c = 0x0, 0x40, 0x80
    cache.access(a)
    cache.access(b)
    cache.access(a, is_write=True)   # write hit promotes a
    cache.access(c)                  # evicts b, not a
    assert cache.access(a) is True


def test_write_miss_does_not_allocate():
    cache = make()
    assert cache.access(0x200, is_write=True) is False
    assert cache.access(0x200) is False  # still not cached
    assert cache.write_misses == 1
    assert cache.fills == 1  # only the read allocated


def test_associativity_respected():
    # 4 distinct lines in a 2-way set always conflict.
    cache = make(size=64, line=16, assoc=2)
    lines = [0x0, 0x40, 0x80, 0xC0]
    for _ in range(3):
        for addr in lines:
            cache.access(addr)
    # With LRU and a cyclic pattern of 4 lines in 2 ways: all misses.
    assert cache.read_misses == 12


def test_hit_rate_and_counters():
    cache = make()
    for _ in range(10):
        cache.access(0x0)
    assert cache.hit_rate == pytest.approx(0.9)
    assert cache.accesses == 10
    assert cache.misses == 1


def test_hit_rate_empty_cache_is_one():
    assert make().hit_rate == 1.0


def test_reset_clears_contents_and_stats():
    cache = make()
    cache.access(0x0)
    cache.reset()
    assert cache.accesses == 0
    assert cache.access(0x0) is False  # contents gone


def test_sequential_scan_miss_rate_matches_line_size():
    cache = make(size=8192, line=16)
    for addr in range(0, 4096, 4):
        cache.access(addr)
    # One miss per 16-byte line.
    assert cache.read_misses == 4096 // 16


# ---------------------------------------------------------------------------
# Geometry validation: address width must cover index + offset + tag
# ---------------------------------------------------------------------------

def test_address_bits_too_small_rejected():
    # 8 KiB direct-mapped with 16-byte lines = 512 sets: 9 index + 4
    # offset bits.  A 12-bit address cannot even index the cache, and a
    # 13-bit one leaves no tag bit -- both used to silently clamp
    # tag_bits to 1 (undercounting tag energy) instead of erroring.
    for address_bits in (12, 13):
        with pytest.raises(ValueError, match="address_bits"):
            CacheConfig(size_bytes=8192, line_bytes=16, associativity=1,
                        address_bits=address_bits)


def test_tag_bits_exact_not_clamped():
    cfg = CacheConfig(size_bytes=8192, line_bytes=16, associativity=1,
                      address_bits=14)
    assert cfg.tag_bits == 1  # exactly one tag bit, by arithmetic
    default = CacheConfig()
    assert default.tag_bits == (default.address_bits - default.index_bits
                                - default.offset_bits)


# ---------------------------------------------------------------------------
# record_read_hits validation (mem.cache_accounting regression)
# ---------------------------------------------------------------------------

def test_record_read_hits_rejects_bogus_counts():
    cache = make()
    cache.access(0x100)
    before = cache.snapshot()
    for bad in (-1, -1000, 2.5, "3", None):
        with pytest.raises(ValueError):
            cache.record_read_hits(bad)
    # A rejected count must leave every counter untouched.
    assert cache.snapshot() == before


def test_record_read_hits_preserves_accounting_invariants():
    # The identities repro.verify audits as mem.cache_accounting must
    # survive legal batched-hit recording (including the empty batch); a
    # negative count used to corrupt them silently.
    cache = make()
    cache.access(0x100)
    cache.record_read_hits(0)
    cache.record_read_hits(3)
    stats = cache.snapshot()
    assert stats.read_hits + stats.read_misses == stats.reads
    assert stats.write_hits + stats.write_misses == stats.writes
    assert stats.hits + stats.misses == stats.accesses
    assert stats.fills == stats.read_misses
    assert 0.0 <= stats.hit_rate <= 1.0


# ---------------------------------------------------------------------------
# fetch_run: the compiled-ISS batch fetch hand-off
# ---------------------------------------------------------------------------

def test_fetch_run_matches_scalar_fetches():
    batched, scalar = make(), make()
    # (first address of the run, fetches in the run) -- all within one
    # 16-byte line, as the compiled ISS guarantees per emitted run.
    runs = [(0x100, 4), (0x100, 2), (0x240, 3), (0x1100, 4), (0x100, 1)]
    for address, count in runs:
        first = scalar.access(address)
        for i in range(1, count):
            assert scalar.access(address + 4 * i)
        assert batched.fetch_run(address, count) is first
    assert batched.snapshot() == scalar.snapshot()
    assert batched.set_contents() == scalar.set_contents()


def test_fetch_run_rejects_bad_counts():
    cache = make()
    for bad in (0, -3, 1.5, "2"):
        with pytest.raises(ValueError):
            cache.fetch_run(0x100, bad)
    assert cache.accesses == 0

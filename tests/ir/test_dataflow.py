"""Dataflow analysis tests (gen/use, liveness, reaching definitions)."""

from repro.ir.dataflow import (
    block_gen_use,
    gen_set,
    live_variables,
    reaching_definitions,
    use_set,
)
from repro.ir.ops import Operation, OpKind, Value
from repro.lang import compile_source


def v(name):
    return Value(name)


# ---------------------------------------------------------------------------
# gen/use on op lists
# ---------------------------------------------------------------------------

def test_gen_includes_results_and_stored_arrays():
    ops = [
        Operation(OpKind.CONST, result=v("i"), const=0),
        Operation(OpKind.STORE, operands=(v("i"), v("i")), symbol="arr"),
    ]
    assert gen_set(ops) == {"i", "arr"}


def test_use_upward_exposed_only():
    ops = [
        Operation(OpKind.CONST, result=v("x"), const=1),
        Operation(OpKind.ADD, result=v("y"), operands=(v("x"), v("z"))),
    ]
    # x defined locally before use; z is upward-exposed.
    assert use_set(ops) == {"z"}


def test_use_includes_loaded_arrays_conservatively():
    ops = [
        Operation(OpKind.CONST, result=v("i"), const=0),
        Operation(OpKind.STORE, operands=(v("i"), v("i")), symbol="a"),
        Operation(OpKind.LOAD, result=v("x"), operands=(v("i"),), symbol="a"),
    ]
    # The prior store may not cover the loaded element.
    assert "a" in use_set(ops)


def test_empty_ops():
    assert gen_set([]) == frozenset()
    assert use_set([]) == frozenset()


# ---------------------------------------------------------------------------
# Block-level analyses on real CDFGs
# ---------------------------------------------------------------------------

def _loop_cdfg():
    src = """
    func f(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n { s = s + i; }
        return s;
    }
    """
    return compile_source(src, entry="f").cdfgs["f"]


def test_block_gen_use_covers_all_blocks():
    cdfg = _loop_cdfg()
    table = block_gen_use(cdfg)
    assert set(table) == set(cdfg.blocks)


def test_liveness_loop_variable_live_around_backedge():
    cdfg = _loop_cdfg()
    live_in, live_out = live_variables(cdfg)
    header, body = cdfg.natural_loops()[0]
    # The accumulator and induction variable are live into the header.
    assert "s" in live_in[header]
    assert "i" in live_in[header]


def test_liveness_dead_after_last_use():
    src = """
    func f(a: int, b: int) -> int {
        var t: int = a * b;
        var u: int = t + 1;
        return u;
    }
    """
    cdfg = compile_source(src, entry="f").cdfgs["f"]
    live_in, live_out = live_variables(cdfg)
    # single block: nothing live out of the exit
    assert live_out[cdfg.entry] == frozenset()


def test_liveness_branch_joins_union():
    src = """
    func f(c: int, x: int, y: int) -> int {
        var r: int = 0;
        if c { r = x; } else { r = y; }
        return r;
    }
    """
    cdfg = compile_source(src, entry="f").cdfgs["f"]
    live_in, _ = live_variables(cdfg)
    entry_live = live_in[cdfg.entry]
    assert {"c", "x", "y"} <= set(entry_live)


def test_reaching_definitions_flow_into_loop():
    cdfg = _loop_cdfg()
    reach_in = reaching_definitions(cdfg)
    header, _ = cdfg.natural_loops()[0]
    # Definitions of both s (init + loop update) reach the header.
    defining_ids = reach_in[header]
    s_defs = [op.op_id for op in cdfg.all_ops()
              if op.result is not None and op.result.name == "s"]
    assert set(s_defs) <= set(defining_ids)


def test_reaching_definitions_killed_by_redefinition():
    src = """
    func f(c: int) -> int {
        var x: int = 1;
        x = 2;
        return x;
    }
    """
    cdfg = compile_source(src, entry="f").cdfgs["f"]
    # Straight-line: reach_in of the entry block is empty.
    reach_in = reaching_definitions(cdfg)
    assert reach_in[cdfg.entry] == frozenset()


def test_array_stores_do_not_kill_each_other():
    src = """
    global g: int[8];
    func f(c: int) -> int {
        if c { g[0] = 1; } else { g[1] = 2; }
        return g[0];
    }
    """
    cdfg = compile_source(src, entry="f").cdfgs["f"]
    reach_in = reaching_definitions(cdfg)
    stores = [op.op_id for op in cdfg.all_ops() if op.kind is OpKind.STORE]
    # Both stores reach the merge block.
    merge = [name for name in cdfg.blocks if name.startswith("endif")][0]
    assert set(stores) <= set(reach_in[merge])

"""CDFG pretty-printer tests."""

from repro.ir.printer import format_cdfg, format_program
from repro.lang import Interpreter, compile_source


SRC = """
global buf: int[8];
func helper(a: int[8]) -> int {
    var s: int = 0;
    for i in 0 .. 8 { s = s + a[i]; }
    return s;
}
func main() -> int {
    for i in 0 .. 8 { buf[i] = i * 2; }
    return helper(buf);
}
"""


def test_format_cdfg_structure():
    program = compile_source(SRC)
    text = format_cdfg(program.cdfgs["main"])
    assert text.startswith("func main()")
    assert "entry" in text
    assert "-> true:" in text          # branch edges rendered
    assert "call @helper" in text
    assert "[buf]" in text             # array argument shown
    assert "store @buf" in text


def test_format_cdfg_arrays_line():
    program = compile_source(SRC)
    text = format_cdfg(program.cdfgs["helper"])
    assert "arrays:" in text
    assert "a[8]" in text or "buf[8]" in text


def test_execution_count_annotations():
    program = compile_source(SRC)
    interp = Interpreter(program)
    interp.run()
    ex = {b: interp.profile.block_count("main", b)
          for b in program.cdfgs["main"].blocks}
    text = format_cdfg(program.cdfgs["main"], ex)
    assert "; x9" in text   # loop header entered 9 times
    assert "; x8" in text   # body 8 times


def test_format_program_covers_all_functions():
    program = compile_source(SRC)
    text = format_program(program)
    assert "func main" in text and "func helper" in text


def test_cli_ir_command(capsys):
    from repro.cli import main
    assert main(["ir", "ckey", "--function", "main", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "func main" in out
    assert "; x" in out


def test_cli_ir_unknown_function(capsys):
    from repro.cli import main
    assert main(["ir", "ckey", "--function", "nope"]) == 1

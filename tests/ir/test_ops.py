"""Operation IR node tests."""

import pytest

from repro.ir.ops import (
    COMPARE_KINDS,
    CONTROL_KINDS,
    Operation,
    OpKind,
    TERMINATOR_KINDS,
    Value,
    is_commutative,
)


def test_value_equality_by_name():
    assert Value("x") == Value("x")
    assert Value("x") != Value("y")


def test_operation_identity_by_op_id():
    a = Operation(OpKind.ADD, result=Value("a"), operands=(Value("x"), Value("y")))
    b = Operation(OpKind.ADD, result=Value("a"), operands=(Value("x"), Value("y")))
    assert a != b
    assert a.op_id != b.op_id
    assert hash(a) != hash(b)


def test_operation_usable_as_dict_key():
    op = Operation(OpKind.NOP)
    d = {op: 1}
    assert d[op] == 1


def test_const_requires_payload():
    with pytest.raises(ValueError):
        Operation(OpKind.CONST, result=Value("c"))


def test_memory_ops_require_symbol():
    with pytest.raises(ValueError):
        Operation(OpKind.LOAD, result=Value("v"), operands=(Value("i"),))
    with pytest.raises(ValueError):
        Operation(OpKind.STORE, operands=(Value("i"), Value("v")))


def test_defines_and_uses():
    op = Operation(OpKind.SUB, result=Value("d"),
                   operands=(Value("a"), Value("b")))
    assert op.defines == Value("d")
    assert op.uses == (Value("a"), Value("b"))


def test_terminator_classification():
    assert TERMINATOR_KINDS == {OpKind.BRANCH, OpKind.JUMP, OpKind.RETURN}
    assert Operation(OpKind.RETURN).is_terminator
    assert not Operation(OpKind.NOP).is_terminator


def test_control_kinds_superset_of_terminators():
    assert TERMINATOR_KINDS < CONTROL_KINDS
    assert OpKind.CALL in CONTROL_KINDS


def test_compare_kinds():
    op = Operation(OpKind.LT, result=Value("c"),
                   operands=(Value("a"), Value("b")))
    assert op.is_compare
    assert COMPARE_KINDS == {OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE,
                             OpKind.GT, OpKind.GE}


def test_memory_classification():
    load = Operation(OpKind.LOAD, result=Value("v"), operands=(Value("i"),),
                     symbol="a")
    assert load.is_memory
    assert not Operation(OpKind.ADD, result=Value("x")).is_memory


@pytest.mark.parametrize("kind,expected", [
    (OpKind.ADD, True), (OpKind.MUL, True), (OpKind.AND, True),
    (OpKind.OR, True), (OpKind.XOR, True), (OpKind.EQ, True),
    (OpKind.NE, True), (OpKind.SUB, False), (OpKind.DIV, False),
    (OpKind.SHL, False), (OpKind.LT, False),
])
def test_commutativity(kind, expected):
    assert is_commutative(kind) is expected

"""IR optimizer tests: each pass's effect plus semantics preservation."""

import pytest

from repro.ir.ops import OpKind
from repro.ir.optimize import optimize_cdfg, optimize_program
from repro.lang import Interpreter, compile_source


def run_both(source, *args, entry="main"):
    """(reference result, optimized result, optimized program)."""
    ref = compile_source(source, entry=entry)
    expected = Interpreter(ref).run(*args)
    opt = compile_source(source, entry=entry)
    optimize_program(opt)
    got = Interpreter(opt).run(*args)
    return expected, got, opt


def kinds_of(program, func="main"):
    return [op.kind for op in program.cdfgs[func].all_ops()]


# ---------------------------------------------------------------------------
# Individual transformations
# ---------------------------------------------------------------------------

def test_constant_folding():
    expected, got, opt = run_both(
        "func main() -> int { return 3 * 4 + (10 / 3); }")
    assert got == expected == 15
    kinds = kinds_of(opt)
    assert OpKind.MUL not in kinds
    assert OpKind.DIV not in kinds


def test_copy_propagation_removes_movs():
    src = """
    func main(a: int) -> int {
        var x: int = a;
        var y: int = x;
        var z: int = y;
        return z + z;
    }
    """
    expected, got, opt = run_both(src, 21)
    assert got == expected == 42
    assert OpKind.MOV not in kinds_of(opt)


def test_mul_by_power_of_two_becomes_shift():
    expected, got, opt = run_both(
        "func main(a: int) -> int { return a * 16; }", 5)
    assert got == expected == 80
    kinds = kinds_of(opt)
    assert OpKind.MUL not in kinds
    assert OpKind.SHL in kinds


def test_mul_by_one_and_zero():
    expected, got, opt = run_both(
        "func main(a: int) -> int { return a * 1 + a * 0; }", 7)
    assert got == expected == 7
    assert OpKind.MUL not in kinds_of(opt)


def test_add_zero_identity():
    expected, got, opt = run_both(
        "func main(a: int) -> int { return (a + 0) - 0; }", 9)
    assert got == expected == 9
    kinds = kinds_of(opt)
    assert OpKind.ADD not in kinds
    assert OpKind.SUB not in kinds


def test_and_with_zero_is_zero():
    expected, got, opt = run_both(
        "func main(a: int) -> int { return a & 0; }", 0x55)
    assert got == expected == 0
    assert OpKind.AND not in kinds_of(opt)


def test_dead_code_removed():
    src = """
    func main(a: int) -> int {
        var dead1: int = a * 977;
        var dead2: int = dead1 + dead1;
        return a + 1;
    }
    """
    expected, got, opt = run_both(src, 3)
    assert got == expected == 4
    assert OpKind.MUL not in kinds_of(opt)


def test_unused_load_removed():
    src = """
    global g: int[4];
    func main() -> int {
        var dead: int = g[2];
        return 5;
    }
    """
    expected, got, opt = run_both(src)
    assert got == expected == 5
    assert OpKind.LOAD not in kinds_of(opt)


def test_stores_never_removed():
    src = """
    global g: int[4];
    func main() -> int {
        g[1] = 42;
        return g[1];
    }
    """
    expected, got, opt = run_both(src)
    assert got == expected == 42
    assert OpKind.STORE in kinds_of(opt)


def test_calls_never_removed():
    src = """
    global counter: int;
    func tick() -> int { counter = counter + 1; return 0; }
    func main() -> int {
        var unused: int = tick();
        return counter;
    }
    """
    expected, got, opt = run_both(src)
    assert got == expected == 1


def test_division_by_zero_not_folded():
    # 1/0 must stay a runtime fault, not crash the optimizer.
    src = "func main(x: int) -> int { if x { return 1; } return 1 / 0; }"
    opt = compile_source(src)
    optimize_program(opt)
    assert Interpreter(opt).run(1) == 1  # fault path not taken
    from repro.lang import InterpError
    with pytest.raises(InterpError):
        Interpreter(opt).run(0)


def test_folding_respects_wrapping():
    expected, got, _ = run_both(
        "func main() -> int { return 0x7FFFFFFF + 1; }")
    assert got == expected == -2**31


def test_copies_killed_by_redefinition():
    src = """
    func main(a: int) -> int {
        var x: int = a;
        var y: int = x;   # y copies x (== a)
        x = 100;          # must NOT retroactively change y
        return y + x;
    }
    """
    expected, got, _ = run_both(src, 7)
    assert got == expected == 107


def test_constants_killed_by_redefinition():
    src = """
    func main(a: int) -> int {
        var k: int = 5;
        var u: int = k * k;  # folds to 25
        k = a;
        return u + k;        # k here is a, not 5
    }
    """
    expected, got, _ = run_both(src, 3)
    assert got == expected == 28


def test_optimizer_idempotent():
    src = """
    func main(a: int) -> int {
        var x: int = a * 4 + 0;
        return x * 1;
    }
    """
    program = compile_source(src)
    optimize_program(program)
    once = [repr(op) for op in program.cdfgs["main"].all_ops()]
    changed = optimize_cdfg(program.cdfgs["main"])
    assert not changed
    twice = [repr(op) for op in program.cdfgs["main"].all_ops()]
    assert once == twice


def test_cdfg_still_verifies_after_optimization():
    src = """
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n {
            if i % 2 == 0 { s = s + i * 2; } else { s = s - i * 1; }
        }
        return s;
    }
    """
    _, _, opt = run_both(src, 10)
    for cdfg in opt.cdfgs.values():
        cdfg.verify()


def test_loop_semantics_preserved():
    src = """
    global out: int[32];
    func main(n: int) -> int {
        var acc: int = 0;
        for i in 0 .. n {
            out[i] = i * 8 + 0;
            acc = acc + out[i] * 1;
        }
        return acc;
    }
    """
    ref = compile_source(src)
    ri = Interpreter(ref)
    expected = ri.run(32)
    opt = compile_source(src)
    optimize_program(opt)
    oi = Interpreter(opt)
    got = oi.run(32)
    assert got == expected
    assert oi.get_global("out") == ri.get_global("out")


def test_optimization_reduces_op_count_on_real_app():
    from repro.apps import app_by_name
    app = app_by_name("digs")
    plain = app.compile()
    optimized = compile_source(app.source, name="digs")
    optimize_program(optimized)
    assert optimized.op_count < plain.op_count


# ---------------------------------------------------------------------------
# Loop-invariant code motion
# ---------------------------------------------------------------------------

def _loop_body_kinds(program, func="main"):
    cdfg = program.cdfgs[func]
    header, body = cdfg.natural_loops()[0]
    return [op.kind for b in body for op in cdfg.blocks[b].ops]


def test_licm_hoists_invariant_arithmetic():
    src = """
    func main(n: int, k: int) -> int {
        var s: int = 0;
        for i in 0 .. n {
            var inv: int = (k << 3) ^ (k + 5);
            s = s + inv + i;
        }
        return s;
    }
    """
    expected, got, opt = run_both(src, 12, 7)
    assert got == expected
    kinds = _loop_body_kinds(opt)
    assert OpKind.SHL not in kinds
    assert OpKind.XOR not in kinds


def test_licm_hoists_safe_constant_index_load():
    src = """
    global lut: int[4];
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n {
            s = s + lut[2] * 3;
        }
        return s;
    }
    """
    ref = compile_source(src)
    ri = Interpreter(ref)
    ri.set_global("lut", [5, 6, 7, 8])
    expected = ri.run(9)
    opt = compile_source(src)
    optimize_program(opt)
    oi = Interpreter(opt)
    oi.set_global("lut", [5, 6, 7, 8])
    assert oi.run(9) == expected
    assert OpKind.LOAD not in _loop_body_kinds(opt)


def test_licm_keeps_load_with_variant_index():
    src = """
    global lut: int[16];
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n { s = s + lut[i]; }
        return s;
    }
    """
    _, _, opt = run_both(src, 8)
    assert OpKind.LOAD in _loop_body_kinds(opt)


def test_licm_keeps_load_when_loop_stores_symbol():
    src = """
    global buf: int[8];
    func main(n: int) -> int {
        var s: int = 0;
        for i in 0 .. n {
            buf[0] = i;
            s = s + buf[0];
        }
        return s;
    }
    """
    expected, got, opt = run_both(src, 6)
    assert got == expected
    assert OpKind.LOAD in _loop_body_kinds(opt)


def test_licm_never_hoists_division():
    src = """
    func main(n: int, d: int) -> int {
        var s: int = 0;
        for i in 0 .. n {
            s = s + 100 / d;
        }
        return s;
    }
    """
    _, _, opt = run_both(src, 4, 5)
    assert OpKind.DIV in _loop_body_kinds(opt)
    # Zero-trip loop with a zero divisor must not fault after optimization.
    from repro.lang import Interpreter as I
    assert I(opt).run(0, 0) == 0


def test_licm_zero_trip_semantics_preserved():
    src = """
    func main(n: int, k: int) -> int {
        var s: int = 1;
        for i in 0 .. n {
            var inv: int = k * k;
            s = s + inv;
        }
        return s;
    }
    """
    expected, got, _ = run_both(src, 0, 999)
    assert got == expected == 1


def test_licm_nested_loops_hoist_through_levels():
    src = """
    func main(n: int, k: int) -> int {
        var s: int = 0;
        for i in 0 .. n {
            for j in 0 .. n {
                var inv: int = (k << 2) + 1;
                s = s + inv;
            }
        }
        return s;
    }
    """
    expected, got, opt = run_both(src, 5, 3)
    assert got == expected
    cdfg = opt.cdfgs["main"]
    # The invariant shift left both loops: no SHL inside any loop body.
    for header, body in cdfg.natural_loops():
        kinds = [op.kind for b in body for op in cdfg.blocks[b].ops]
        assert OpKind.SHL not in kinds

"""CDFG structure and dependence-graph tests."""

import pytest

from repro.ir.cdfg import BasicBlock, CDFG, IRError, build_data_dependence_graph
from repro.ir.ops import Operation, OpKind, Value


def v(name):
    return Value(name)


def make_diamond():
    """entry -> (then|else) -> merge"""
    cdfg = CDFG("f")
    entry = cdfg.add_block("entry")
    then = cdfg.add_block("then")
    other = cdfg.add_block("else")
    merge = cdfg.add_block("merge")
    entry.append(Operation(OpKind.CONST, result=v("c"), const=1))
    entry.append(Operation(OpKind.BRANCH, operands=(v("c"),)))
    then.append(Operation(OpKind.JUMP))
    other.append(Operation(OpKind.JUMP))
    merge.append(Operation(OpKind.RETURN))
    cdfg.add_edge("entry", "then", "true")
    cdfg.add_edge("entry", "else", "false")
    cdfg.add_edge("then", "merge", "jump")
    cdfg.add_edge("else", "merge", "jump")
    return cdfg


# ---------------------------------------------------------------------------
# BasicBlock
# ---------------------------------------------------------------------------

def test_block_append_after_terminator_rejected():
    block = BasicBlock("b")
    block.append(Operation(OpKind.RETURN))
    with pytest.raises(IRError):
        block.append(Operation(OpKind.NOP))


def test_block_body_excludes_terminator():
    block = BasicBlock("b")
    block.append(Operation(OpKind.NOP))
    block.append(Operation(OpKind.JUMP))
    assert len(block.body) == 1
    assert block.terminator.kind is OpKind.JUMP


# ---------------------------------------------------------------------------
# CDFG structure
# ---------------------------------------------------------------------------

def test_first_block_is_entry():
    cdfg = CDFG("f")
    cdfg.add_block("b0")
    assert cdfg.entry == "b0"


def test_duplicate_block_rejected():
    cdfg = CDFG("f")
    cdfg.add_block("b")
    with pytest.raises(IRError):
        cdfg.add_block("b")


def test_edge_to_unknown_block_rejected():
    cdfg = CDFG("f")
    cdfg.add_block("b")
    with pytest.raises(IRError):
        cdfg.add_edge("b", "nope")


def test_bad_edge_kind_rejected():
    cdfg = make_diamond()
    with pytest.raises(IRError):
        cdfg.add_edge("then", "else", "sideways")


def test_diamond_verifies():
    make_diamond().verify()


def test_branch_targets():
    cdfg = make_diamond()
    taken, fall = cdfg.branch_targets("entry")
    assert (taken, fall) == ("then", "else")


def test_verify_rejects_branch_with_one_successor():
    cdfg = CDFG("f")
    a = cdfg.add_block("a")
    b = cdfg.add_block("b")
    a.append(Operation(OpKind.CONST, result=v("c"), const=0))
    a.append(Operation(OpKind.BRANCH, operands=(v("c"),)))
    b.append(Operation(OpKind.RETURN))
    cdfg.add_edge("a", "b", "true")
    with pytest.raises(IRError):
        cdfg.verify()


def test_verify_rejects_return_with_successor():
    cdfg = CDFG("f")
    a = cdfg.add_block("a")
    b = cdfg.add_block("b")
    a.append(Operation(OpKind.RETURN))
    b.append(Operation(OpKind.RETURN))
    cdfg.add_edge("a", "b", "fall")
    with pytest.raises(IRError):
        cdfg.verify()


def test_verify_rejects_unreachable_block():
    cdfg = CDFG("f")
    a = cdfg.add_block("a")
    cdfg.add_block("island")
    a.append(Operation(OpKind.RETURN))
    cdfg.blocks["island"].append(Operation(OpKind.RETURN))
    with pytest.raises(IRError):
        cdfg.verify()


def test_verify_rejects_undeclared_array():
    cdfg = CDFG("f")
    a = cdfg.add_block("a")
    idx = v("i")
    a.append(Operation(OpKind.CONST, result=idx, const=0))
    a.append(Operation(OpKind.LOAD, result=v("x"), operands=(idx,), symbol="arr"))
    a.append(Operation(OpKind.RETURN))
    with pytest.raises(IRError):
        cdfg.verify()


def test_declare_array_rejects_nonpositive():
    cdfg = CDFG("f")
    with pytest.raises(IRError):
        cdfg.declare_array("a", 0)


def test_reverse_postorder_starts_at_entry():
    cdfg = make_diamond()
    order = cdfg.reverse_postorder()
    assert order[0] == "entry"
    assert order[-1] == "merge"
    assert set(order) == set(cdfg.blocks)


def test_natural_loop_detection():
    cdfg = CDFG("f")
    entry = cdfg.add_block("entry")
    header = cdfg.add_block("header")
    body = cdfg.add_block("body")
    exit_ = cdfg.add_block("exit")
    entry.append(Operation(OpKind.JUMP))
    header.append(Operation(OpKind.CONST, result=v("c"), const=1))
    header.append(Operation(OpKind.BRANCH, operands=(v("c"),)))
    body.append(Operation(OpKind.JUMP))
    exit_.append(Operation(OpKind.RETURN))
    cdfg.add_edge("entry", "header", "jump")
    cdfg.add_edge("header", "body", "true")
    cdfg.add_edge("header", "exit", "false")
    cdfg.add_edge("body", "header", "jump")
    loops = cdfg.natural_loops()
    assert loops == [("header", frozenset({"header", "body"}))]


def test_op_count():
    assert make_diamond().op_count == 5


# ---------------------------------------------------------------------------
# Data-dependence graph
# ---------------------------------------------------------------------------

def test_flow_dependence():
    a = Operation(OpKind.CONST, result=v("a"), const=1)
    b = Operation(OpKind.ADD, result=v("b"), operands=(v("a"), v("a")))
    ddg = build_data_dependence_graph([a, b])
    assert ddg.has_edge(a, b)
    assert ddg.edges[a, b]["dep"] == "flow"


def test_output_dependence():
    a = Operation(OpKind.CONST, result=v("x"), const=1)
    b = Operation(OpKind.CONST, result=v("x"), const=2)
    ddg = build_data_dependence_graph([a, b])
    assert ddg.edges[a, b]["dep"] == "output"


def test_anti_dependence():
    a = Operation(OpKind.CONST, result=v("x"), const=1)
    read = Operation(OpKind.ADD, result=v("y"), operands=(v("x"), v("x")))
    redefine = Operation(OpKind.CONST, result=v("x"), const=2)
    ddg = build_data_dependence_graph([a, read, redefine])
    assert ddg.has_edge(read, redefine)
    assert ddg.edges[read, redefine]["dep"] == "anti"


def test_store_load_dependence_same_symbol():
    i = Operation(OpKind.CONST, result=v("i"), const=0)
    store = Operation(OpKind.STORE, operands=(v("i"), v("i")), symbol="a")
    load = Operation(OpKind.LOAD, result=v("x"), operands=(v("i"),), symbol="a")
    ddg = build_data_dependence_graph([i, store, load])
    assert ddg.has_edge(store, load)
    assert ddg.edges[store, load]["dep"] == "mem"


def test_no_dependence_between_different_symbols():
    i = Operation(OpKind.CONST, result=v("i"), const=0)
    store = Operation(OpKind.STORE, operands=(v("i"), v("i")), symbol="a")
    load = Operation(OpKind.LOAD, result=v("x"), operands=(v("i"),), symbol="b")
    ddg = build_data_dependence_graph([i, store, load])
    assert not ddg.has_edge(store, load)


def test_load_store_war_on_memory():
    i = Operation(OpKind.CONST, result=v("i"), const=0)
    load = Operation(OpKind.LOAD, result=v("x"), operands=(v("i"),), symbol="a")
    store = Operation(OpKind.STORE, operands=(v("i"), v("x")), symbol="a")
    ddg = build_data_dependence_graph([i, load, store])
    assert ddg.has_edge(load, store)


def test_store_store_ordering():
    i = Operation(OpKind.CONST, result=v("i"), const=0)
    s1 = Operation(OpKind.STORE, operands=(v("i"), v("i")), symbol="a")
    s2 = Operation(OpKind.STORE, operands=(v("i"), v("i")), symbol="a")
    ddg = build_data_dependence_graph([i, s1, s2])
    assert ddg.has_edge(s1, s2)


def test_ddg_is_acyclic():
    import networkx as nx
    ops = [
        Operation(OpKind.CONST, result=v("a"), const=1),
        Operation(OpKind.ADD, result=v("b"), operands=(v("a"), v("a"))),
        Operation(OpKind.ADD, result=v("a"), operands=(v("b"), v("b"))),
        Operation(OpKind.MUL, result=v("c"), operands=(v("a"), v("b"))),
    ]
    ddg = build_data_dependence_graph(ops)
    assert nx.is_directed_acyclic_graph(ddg)

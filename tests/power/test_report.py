"""Report-formatting unit tests."""

import pytest

from repro.power.report import (
    _fmt_energy,
    energy_savings_percent,
    time_change_percent,
)
from repro.power.system import CoreEnergy, SystemRun


def make_run(total_nj=1000.0, cycles=100, label="initial"):
    return SystemRun(label=label,
                     energy=CoreEnergy(up_core_nj=total_nj),
                     up_cycles=cycles, asic_cycles=0, result=1,
                     up_utilization=0.3)


@pytest.mark.parametrize("nj,expected", [
    (0, "0.0"),
    (1.5, "1.500nJ"),
    (999.9, "999.900nJ"),
    (1_000.0, "1.000uJ"),
    (123_456.0, "123.456uJ"),
    (1_000_000.0, "1.000mJ"),
    (24_790_000.0, "24.790mJ"),
])
def test_fmt_energy_units(nj, expected):
    assert _fmt_energy(nj) == expected


def test_savings_sign_convention():
    initial = make_run(total_nj=1000.0)
    partitioned = make_run(total_nj=400.0, label="partitioned")
    # Table 1's convention: negative = saving.
    assert energy_savings_percent(initial, partitioned) == pytest.approx(-60.0)


def test_savings_positive_when_worse():
    initial = make_run(total_nj=1000.0)
    worse = make_run(total_nj=1200.0)
    assert energy_savings_percent(initial, worse) == pytest.approx(20.0)


def test_savings_zero_energy_initial():
    assert energy_savings_percent(make_run(total_nj=0.0), make_run()) == 0.0


def test_time_change_sign_convention():
    initial = make_run(cycles=100)
    faster = make_run(cycles=80)
    slower = make_run(cycles=170)
    assert time_change_percent(initial, faster) == pytest.approx(-20.0)
    assert time_change_percent(initial, slower) == pytest.approx(70.0)


def test_time_change_zero_cycles_initial():
    assert time_change_percent(make_run(cycles=0), make_run(cycles=10)) == 0.0


def test_savings_chart_renders_bars():
    from repro.power.report import format_savings_chart
    initial = make_run(total_nj=1000.0, cycles=100)
    saved_fast = make_run(total_nj=300.0, cycles=60, label="partitioned")
    saved_slow = make_run(total_nj=200.0, cycles=170, label="partitioned")
    chart = format_savings_chart([("fast", initial, saved_fast),
                                  ("slow", initial, saved_slow)])
    lines = chart.splitlines()
    assert len(lines) == 5  # header + 2 bars per app
    assert "70.0% saved" in chart
    assert "-40.0% time" in chart
    assert "+70.0% time" in chart
    # Slow app's time bar points rightward (after the axis); fast one left.
    fast_t = lines[2]
    slow_t = lines[4]
    assert "=" in fast_t.split("|")[0]
    assert "=" in slow_t.split("|")[1]


def test_savings_chart_empty():
    from repro.power.report import format_savings_chart
    assert format_savings_chart([]) == "(no results)"


def test_table1_columns_sum_to_total():
    """The displayed per-core columns must account for the whole total
    (bus energy folds into the mem column, as the paper reports it)."""
    from repro.power.report import format_table1
    run = SystemRun(label="initial",
                    energy=CoreEnergy(icache_nj=100.0, dcache_nj=50.0,
                                      mem_nj=200.0, up_core_nj=500.0,
                                      asic_core_nj=0.0, bus_nj=150.0),
                    up_cycles=10, asic_cycles=0, result=1,
                    up_utilization=0.3)
    text = format_table1([("x", run, run)])
    row = text.splitlines()[2]
    cells = [c.strip() for c in row.split("|")]
    # mem column = 200 + 150 bus
    assert cells[4] == "350.000nJ"
    assert cells[7] == "1.000uJ"  # total
    # And the shown columns add to the total exactly.
    shown = 100.0 + 50.0 + 350.0 + 500.0 + 0.0
    assert shown == run.total_energy_nj

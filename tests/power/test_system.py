"""System-level evaluation tests (initial + partitioned, Table 1 machinery)."""

import pytest

from repro.isa.image import link_program
from repro.lang import compile_source
from repro.power.report import (
    energy_savings_percent,
    format_savings,
    format_table1,
    time_change_percent,
)
from repro.power.system import (
    CoreEnergy,
    default_cache_configs,
    evaluate_initial,
    evaluate_partitioned,
)
from repro.sched.utilization import ClusterMetrics
from repro.synth.rtl_sim import AsicRunStats


SRC = """
global data: int[64];
func main() -> int {
    var s: int = 0;
    for i in 0 .. 64 { data[i] = i * 3; }
    for i in 0 .. 64 { s = s + data[i]; }
    return s;
}
"""


@pytest.fixture()
def image():
    return link_program(compile_source(SRC))


def fake_asic(compute=500, invocations=1, words_in=64, words_out=64):
    stats = AsicRunStats(compute_cycles=compute, handshake_cycles=4,
                         transfer_cycles=2 * (words_in + words_out),
                         invocations=invocations,
                         transfer_words_in=words_in,
                         transfer_words_out=words_out)
    metrics = ClusterMetrics(total_cycles=compute, utilization=0.7,
                             utilization_size_weighted=0.6, geq=5000,
                             energy_estimate_nj=800.0,
                             energy_detailed_nj=1200.0, clock_ns=12.0)
    return stats, metrics


# ---------------------------------------------------------------------------
# CoreEnergy
# ---------------------------------------------------------------------------

def test_core_energy_total():
    energy = CoreEnergy(icache_nj=1, dcache_nj=2, mem_nj=3, up_core_nj=4,
                        asic_core_nj=5, bus_nj=6)
    assert energy.total_nj == 21


# ---------------------------------------------------------------------------
# Initial evaluation
# ---------------------------------------------------------------------------

def test_initial_run_accounts_every_core(image, library):
    run = evaluate_initial(image, library)
    assert run.result == sum(3 * i for i in range(64))
    assert run.energy.up_core_nj > 0
    assert run.energy.icache_nj > 0
    assert run.energy.dcache_nj > 0
    assert run.energy.mem_nj > 0
    assert run.energy.bus_nj > 0
    assert run.energy.asic_core_nj == 0
    assert run.asic_cycles == 0
    assert 0 < run.up_utilization < 1


def test_initial_without_memory_system(image, library):
    run = evaluate_initial(image, library, model_caches=False)
    assert run.energy.icache_nj == 0
    assert run.energy.dcache_nj == 0
    assert run.energy.mem_nj == 0
    assert run.energy.bus_nj == 0
    assert run.energy.up_core_nj > 0


def test_uncached_run_is_faster_in_cycles(image, library):
    # Without cache modelling there are no miss stalls.
    cached = evaluate_initial(image, library)
    uncached = evaluate_initial(image, library, model_caches=False)
    assert uncached.up_cycles < cached.up_cycles


def test_globals_init_forwarded(library):
    src = "global g: int[4]; func main() -> int { return g[2]; }"
    image = link_program(compile_source(src))
    run = evaluate_initial(image, library, globals_init={"g": [0, 0, 77, 0]})
    assert run.result == 77


# ---------------------------------------------------------------------------
# Partitioned evaluation
# ---------------------------------------------------------------------------

def hw_blocks_for(image, function, loop_index=0):
    """Pick the blocks of one loop of `function` from the attribution."""
    from repro.cluster import decompose_into_clusters
    program = compile_source(SRC)
    clusters = decompose_into_clusters(program, function=function)
    loops = [c for c in clusters if c.kind == "loop"]
    cluster = loops[loop_index]
    return {(function, b) for b in cluster.blocks}


def test_partitioned_excludes_cluster_from_up(image, library):
    initial = evaluate_initial(image, library)
    stats, metrics = fake_asic()
    hw = hw_blocks_for(image, "main", 0)
    part = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=7000)
    assert part.result == initial.result          # functional equivalence
    assert part.sim.hw_instructions > 0
    assert part.sim.hw_entries == 1
    # μP side sheds the cluster's cycles but pays transfer cycles.
    assert part.up_cycles < initial.up_cycles + stats.transfer_cycles
    assert part.asic_cycles == stats.asic_cycles


def test_partitioned_uses_gate_level_energy_when_given(image, library):
    stats, metrics = fake_asic()
    hw = hw_blocks_for(image, "main", 0)
    part = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=7000, asic_energy_nj=999.0)
    assert part.energy.asic_core_nj == pytest.approx(999.0)


def test_partitioned_falls_back_to_detailed_model(image, library):
    stats, metrics = fake_asic()
    hw = hw_blocks_for(image, "main", 0)
    part = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=7000)
    assert part.energy.asic_core_nj == pytest.approx(
        metrics.energy_detailed_nj)


def test_transfer_traffic_lands_on_mem_and_bus(image, library):
    hw = hw_blocks_for(image, "main", 0)
    stats0, metrics = fake_asic(words_in=0, words_out=0)
    stats1, _ = fake_asic(words_in=100, words_out=100)
    p0 = evaluate_partitioned(image, library, hw_blocks=hw, asic_stats=stats0,
                              asic_metrics=metrics, asic_cells=1)
    p1 = evaluate_partitioned(image, library, hw_blocks=hw, asic_stats=stats1,
                              asic_metrics=metrics, asic_cells=1)
    assert p1.energy.mem_nj > p0.energy.mem_nj
    assert p1.energy.bus_nj > p0.energy.bus_nj
    assert p1.energy.up_core_nj > p0.energy.up_core_nj  # μP moves the words
    assert p1.transfer_words == 200  # 100 in + 100 out


def test_asic_inplace_memory_traffic(image, library):
    hw = hw_blocks_for(image, "main", 0)
    stats, metrics = fake_asic(words_in=0, words_out=0)
    base = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=1)
    heavy = evaluate_partitioned(image, library, hw_blocks=hw,
                                 asic_stats=stats, asic_metrics=metrics,
                                 asic_cells=1, asic_mem_reads=5000,
                                 asic_mem_writes=5000)
    assert heavy.energy.mem_nj > base.energy.mem_nj


def test_partitioned_icache_traffic_drops(image, library):
    initial = evaluate_initial(image, library)
    stats, metrics = fake_asic()
    hw = hw_blocks_for(image, "main", 0)
    part = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=1)
    # The cluster's fetches are gone from the cache (paper footnote 2).
    assert part.energy.icache_nj < initial.energy.icache_nj


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def test_savings_and_change_signs(image, library):
    initial = evaluate_initial(image, library)
    stats, metrics = fake_asic(compute=100, words_in=4, words_out=4)
    hw = hw_blocks_for(image, "main", 0)
    part = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=1, asic_energy_nj=50.0)
    sav = energy_savings_percent(initial, part)
    assert sav < 0  # negative = saving, like Table 1
    chg = time_change_percent(initial, part)
    assert isinstance(chg, float)


def test_format_table1_structure(image, library):
    initial = evaluate_initial(image, library)
    stats, metrics = fake_asic()
    hw = hw_blocks_for(image, "main", 0)
    part = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=1)
    table = format_table1([("app", initial, part)])
    lines = table.splitlines()
    assert len(lines) == 4  # header, rule, I row, P row
    assert "|I |" in lines[2]
    assert "|P |" in lines[3]


def test_format_savings_structure(image, library):
    initial = evaluate_initial(image, library)
    stats, metrics = fake_asic()
    hw = hw_blocks_for(image, "main", 0)
    part = evaluate_partitioned(image, library, hw_blocks=hw,
                                asic_stats=stats, asic_metrics=metrics,
                                asic_cells=1)
    text = format_savings([("app", initial, part)])
    assert "app" in text
    assert len(text.splitlines()) == 2


def test_default_cache_configs_valid():
    icache, dcache = default_cache_configs()
    assert icache.size_bytes > dcache.size_bytes
    assert icache.num_sets > 0 and dcache.num_sets > 0

"""Synthesis substrate tests: datapath, FSM, netlist, gate-level energy,
RTL run statistics."""

import pytest

from repro.ir.ops import Operation, OpKind, Value
from repro.sched.binding import bind_schedule
from repro.sched.list_scheduler import list_schedule
from repro.sched.utilization import cluster_metrics
from repro.synth.datapath import MUX_LEG_GEQ, MAX_MUX_LEGS_PER_UNIT, build_datapath
from repro.synth.fsm import (
    FSM_BASE_GEQ,
    FSM_STATE_GEQ,
    LOOP_COUNTER_GEQ,
    build_controller,
)
from repro.synth.gatesim import estimate_gate_energy
from repro.synth.netlist import SCRATCHPAD_CELLS_PER_WORD, expand_netlist
from repro.synth.rtl_sim import (
    HANDSHAKE_CYCLES,
    TRANSFER_CYCLES_PER_WORD,
    simulate_asic,
)
from repro.tech.resources import ResourceKind, ResourceSet


def v(name):
    return Value(name)


def mac_ops(count):
    """count independent multiply-accumulate pairs."""
    ops = []
    for i in range(count):
        ops.append(Operation(OpKind.CONST, result=v(f"c{i}"), const=i))
        ops.append(Operation(OpKind.MUL, result=v(f"m{i}"),
                             operands=(v(f"c{i}"), v(f"c{i}"))))
        ops.append(Operation(OpKind.ADD, result=v(f"a{i}"),
                             operands=(v(f"m{i}"), v(f"c{i}"))))
    return ops


@pytest.fixture()
def bound_cluster(library):
    rs = ResourceSet("m", {ResourceKind.ALU: 1, ResourceKind.MULTIPLIER: 1})
    ops = mac_ops(4)
    schedules = {"body": list_schedule(ops, rs)}
    binding = bind_schedule(schedules, library)
    return schedules, binding, {"body": {"body": 10}["body"]}


# ---------------------------------------------------------------------------
# Datapath
# ---------------------------------------------------------------------------

def test_datapath_units_match_binding(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    assert set(dp.units) == {(k.kind, k.index) for k in binding.instances}


def test_datapath_registers_for_cross_step_values(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    # mul results cross at least one step boundary into their adds.
    assert dp.register_count >= 1


def test_datapath_muxes_on_shared_units(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    assert dp.mux_legs > 0


def test_mux_legs_capped(library):
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    ops = []
    ops.append(Operation(OpKind.CONST, result=v("x0"), const=1))
    for i in range(40):
        ops.append(Operation(OpKind.ADD, result=v(f"x{i+1}"),
                             operands=(v(f"x{i}"), v(f"x{i}"))))
    schedules = {"b": list_schedule(ops, rs)}
    binding = bind_schedule(schedules, library)
    dp = build_datapath(schedules, binding, library)
    assert dp.mux_legs <= MAX_MUX_LEGS_PER_UNIT


def test_datapath_geq_composition(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    units = sum(dp.units.values())
    regs = dp.register_count * library.spec(ResourceKind.REGISTER).geq
    muxes = dp.mux_legs * MUX_LEG_GEQ
    assert dp.geq == units + regs + muxes


def test_const_wires_not_registered(library):
    # A block whose inputs are all constants must not charge input regs.
    rs = ResourceSet("a1", {ResourceKind.ALU: 1})
    ops = [
        Operation(OpKind.CONST, result=v("k"), const=7),
        Operation(OpKind.ADD, result=v("r"), operands=(v("k"), v("k"))),
    ]
    schedules = {"b": list_schedule(ops, rs)}
    binding = bind_schedule(schedules, library)
    with_ops = build_datapath(schedules, binding, library,
                              block_ops={"b": ops})
    without = build_datapath(schedules, binding, library)
    assert with_ops.register_count <= without.register_count


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------

def test_controller_states_sum_of_makespans(bound_cluster):
    schedules, _, _ = bound_cluster
    ctrl = build_controller(schedules, loop_counter_count=1)
    assert ctrl.states == sum(max(1, s.makespan) for s in schedules.values())


def test_controller_geq_formula(bound_cluster):
    schedules, _, _ = bound_cluster
    ctrl = build_controller(schedules, loop_counter_count=2)
    expected = (FSM_BASE_GEQ + ctrl.states * FSM_STATE_GEQ
                + 2 * LOOP_COUNTER_GEQ)
    assert ctrl.geq == expected


def test_controller_negative_counters_rejected(bound_cluster):
    schedules, _, _ = bound_cluster
    with pytest.raises(ValueError):
        build_controller(schedules, loop_counter_count=-1)


# ---------------------------------------------------------------------------
# Netlist
# ---------------------------------------------------------------------------

def test_netlist_total_matches_components(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    ctrl = build_controller(schedules, 1)
    netlist = expand_netlist(dp, ctrl, library)
    assert netlist.total_cells == sum(c.gates for c in netlist.components)
    assert netlist.total_gates == netlist.total_cells


def test_netlist_has_unit_register_mux_controller_components(
        bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    ctrl = build_controller(schedules, 1)
    netlist = expand_netlist(dp, ctrl, library)
    names = {c.name for c in netlist.components}
    assert "controller" in names
    assert "registers" in names
    assert any(n.startswith("multiplier") for n in names)


def test_netlist_scratchpad_component(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    ctrl = build_controller(schedules, 1)
    netlist = expand_netlist(dp, ctrl, library, scratchpad_words=512)
    spad = netlist.component("scratchpad")
    assert spad.gates == 512 * SCRATCHPAD_CELLS_PER_WORD


def test_netlist_unknown_component_raises(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    netlist = expand_netlist(dp, build_controller(schedules, 1), library)
    with pytest.raises(KeyError):
        netlist.component("flux-capacitor")


def test_registers_fully_sequential(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    netlist = expand_netlist(dp, build_controller(schedules, 1), library)
    regs = netlist.component("registers")
    assert regs.combinational_gates == 0
    assert regs.sequential_gates > 0


# ---------------------------------------------------------------------------
# Gate-level energy
# ---------------------------------------------------------------------------

def test_gate_energy_positive_and_componentwise(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    ex = {"body": 10}
    metrics = cluster_metrics(binding, ex, library)
    dp = build_datapath(schedules, binding, library)
    netlist = expand_netlist(dp, build_controller(schedules, 1), library)
    energy = estimate_gate_energy(netlist, binding, ex,
                                  metrics.total_cycles, library)
    assert energy.total_nj > 0
    assert energy.total_nj == pytest.approx(sum(energy.component_nj.values()))


def test_gate_energy_close_to_resource_model(bound_cluster, library):
    """Fig. 1 line 15's cross-check: the gate-level estimate should land in
    the same ballpark as the detailed resource-level model."""
    schedules, binding, _ = bound_cluster
    ex = {"body": 50}
    metrics = cluster_metrics(binding, ex, library)
    dp = build_datapath(schedules, binding, library)
    netlist = expand_netlist(dp, build_controller(schedules, 1), library)
    energy = estimate_gate_energy(netlist, binding, ex,
                                  metrics.total_cycles, library)
    unit_energy = sum(nj for name, nj in energy.component_nj.items()
                      if name.startswith(("alu", "multiplier")))
    assert unit_energy == pytest.approx(metrics.energy_detailed_nj, rel=0.6)


def test_gate_energy_scales_with_cycles(bound_cluster, library):
    schedules, binding, _ = bound_cluster
    dp = build_datapath(schedules, binding, library)
    netlist = expand_netlist(dp, build_controller(schedules, 1), library)
    small = estimate_gate_energy(netlist, binding, {"body": 1}, 10, library)
    large = estimate_gate_energy(netlist, binding, {"body": 10}, 100, library)
    assert large.total_nj > 5 * small.total_nj


# ---------------------------------------------------------------------------
# RTL run statistics
# ---------------------------------------------------------------------------

def test_asic_run_stats_composition(bound_cluster):
    schedules, _, _ = bound_cluster
    stats = simulate_asic(schedules, {"body": 10}, invocations=2,
                          transfer_words_in=30, transfer_words_out=20)
    assert stats.compute_cycles == schedules["body"].makespan * 10
    assert stats.handshake_cycles == 2 * HANDSHAKE_CYCLES
    assert stats.transfer_cycles == 50 * TRANSFER_CYCLES_PER_WORD
    assert stats.asic_cycles == stats.compute_cycles + stats.handshake_cycles


def test_asic_run_stats_negative_invocations_rejected(bound_cluster):
    schedules, _, _ = bound_cluster
    with pytest.raises(ValueError):
        simulate_asic(schedules, {"body": 1}, invocations=-1,
                      transfer_words_in=0, transfer_words_out=0)

"""The evaluator cache must key on *content*, never object identity.

Netlist and BindingResult are mutable dataclasses.  The old cache keyed
on ``id(netlist)``, so mutating a netlist in place (or a recycled object
id landing on a live entry) could return energies priced against stale
gate counts.  These are fault-injection tests: they mutate inputs while
keeping identities fixed and assert the cache can never serve the stale
evaluator.
"""

import pytest

from repro.ir.ops import Operation, OpKind, Value
from repro.sched.binding import bind_schedule
from repro.sched.list_scheduler import list_schedule
from repro.synth.datapath import build_datapath
from repro.synth.fsm import build_controller
from repro.synth.gatesim import (
    GateEnergyEvaluator,
    _evaluator_digest,
    estimate_gate_energy,
    get_evaluator,
)
from repro.synth.netlist import expand_netlist
from repro.tech.resources import ResourceKind, ResourceSet

EX_TIMES = {"body": 10}
TOTAL_CYCLES = 100


def _ops():
    ops = []
    for i in range(4):
        ops.append(Operation(OpKind.CONST, result=Value(f"c{i}"), const=i))
        ops.append(Operation(OpKind.MUL, result=Value(f"m{i}"),
                             operands=(Value(f"c{i}"), Value(f"c{i}"))))
        ops.append(Operation(OpKind.ADD, result=Value(f"a{i}"),
                             operands=(Value(f"m{i}"), Value(f"c{i}"))))
    return ops


@pytest.fixture()
def synthesized(library):
    rs = ResourceSet("m", {ResourceKind.ALU: 1, ResourceKind.MULTIPLIER: 1})
    schedules = {"body": list_schedule(_ops(), rs)}
    binding = bind_schedule(schedules, library)
    dp = build_datapath(schedules, binding, library)
    netlist = expand_netlist(dp, build_controller(schedules, 1), library)
    return netlist, binding


def test_mutated_netlist_same_identity_reprices(synthesized, library):
    """The headline fault injection: double a component's gate count in
    place and the (same-identity) netlist must not return stale energy."""
    netlist, binding = synthesized
    before = estimate_gate_energy(netlist, binding, EX_TIMES, TOTAL_CYCLES,
                                  library)
    victim = netlist.components[0]
    victim.combinational_gates *= 2
    after = estimate_gate_energy(netlist, binding, EX_TIMES, TOTAL_CYCLES,
                                 library)
    assert after.component_nj[victim.name] > \
        before.component_nj[victim.name]
    # And the exact expected value: a fresh evaluator agrees bit-for-bit.
    fresh = GateEnergyEvaluator(netlist, binding, library).evaluate(
        EX_TIMES, TOTAL_CYCLES)
    assert after.component_nj == fresh.component_nj


def test_mutated_binding_same_identity_reprices(synthesized, library):
    netlist, binding = synthesized
    before = estimate_gate_energy(netlist, binding, EX_TIMES, TOTAL_CYCLES,
                                  library)
    # Stretch one instance's busy intervals in place: its unit now shows
    # more active (higher-activity) cycles.
    inst = binding.instances[0]
    for block, spans in inst.intervals.items():
        inst.intervals[block] = [(s, e + 1) for s, e in spans]
    after = estimate_gate_energy(netlist, binding, EX_TIMES, TOTAL_CYCLES,
                                 library)
    fresh = GateEnergyEvaluator(netlist, binding, library).evaluate(
        EX_TIMES, TOTAL_CYCLES)
    assert after.component_nj == fresh.component_nj
    assert after.component_nj != before.component_nj


def test_identical_content_hits_cache_across_identities(synthesized,
                                                        library):
    """Structurally equal inputs share one evaluator even when they are
    different objects — the digest ignores identity in both directions."""
    import copy

    netlist, binding = synthesized
    first = get_evaluator(netlist, binding, library)
    clone_netlist = copy.deepcopy(netlist)
    clone_binding = copy.deepcopy(binding)
    assert _evaluator_digest(clone_netlist, clone_binding, library) == \
        _evaluator_digest(netlist, binding, library)
    assert get_evaluator(clone_netlist, clone_binding, library) is first


def test_digest_covers_library_constants(synthesized, library):
    import dataclasses

    netlist, binding = synthesized
    hotter = dataclasses.replace(
        library, active_activity=library.active_activity * 2)
    assert _evaluator_digest(netlist, binding, hotter) != \
        _evaluator_digest(netlist, binding, library)


def test_cache_is_bounded(synthesized, library):
    from repro.synth import gatesim

    netlist, binding = synthesized
    get_evaluator(netlist, binding, library)
    victim = netlist.components[0]
    original = victim.combinational_gates
    try:
        for bump in range(gatesim._EVALUATOR_CACHE_MAX + 10):
            victim.combinational_gates = original + bump
            get_evaluator(netlist, binding, library)
        assert len(gatesim._EVALUATOR_CACHE) <= gatesim._EVALUATOR_CACHE_MAX
    finally:
        victim.combinational_gates = original

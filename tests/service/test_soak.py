"""Concurrency soak: mixed clients over real HTTP, kill-and-recover.

The service-tier endurance tests: M client threads × K mixed requests
against a multi-lane server must cost exactly one evaluation per unique
digest with every duplicate served the identical result; a saturated
server sheds fairly; and (slow tier) a SIGKILL with jobs still queued
must leave a journal from which the restarted server resolves every
pre-kill job id by polling alone.
"""

import signal
import subprocess
import threading

import pytest

from repro.obs import Tracer
from repro.service import ServiceClient, ServiceServer, build_request_payload

from tests.service.conftest import spawn_server
from tests.service.test_server import serve_and_call


class TestHttpSoak:
    def test_mixed_clients_coalesce_per_digest(self):
        """4 client threads × 4 workloads each (16 submissions, 4
        unique digests) over real HTTP against a 4-lane server."""
        clients, spread = 4, 4
        tracer = Tracer("soak")
        server = ServiceServer(lanes=4, max_queue=64,
                               max_pending_per_client=32, tracer=tracer)

        def work(client):
            results = {}
            lock = threading.Lock()

            def one_client(name):
                for scale in range(1, spread + 1):
                    status, body, _ = client.submit(build_request_payload(
                        "ckey", scale=scale, client=name))
                    assert status == 202
                    with lock:
                        results.setdefault(body["id"], []).append(name)

            threads = [threading.Thread(target=one_client,
                                        args=(f"c{i}",))
                       for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == spread
            jobs = {job_id: client.wait(job_id, timeout_s=120)
                    for job_id in results}
            return jobs, client.metrics()

        jobs, metrics = serve_and_call(server, work, timeout_s=300)
        counters = metrics["counters"]
        assert counters["service.evaluations"] == spread, \
            "one evaluation per unique digest under mixed load"
        assert counters["service.jobs.submitted"] == spread
        assert counters["service.jobs.coalesced"] \
            == clients * spread - spread
        for job in jobs.values():
            assert job["state"] == "done"
            assert job["waiters"] == clients
            assert job["result"]["verified"] is True

    def test_saturation_sheds_fairly_over_http(self):
        server = ServiceServer(lanes=2, max_queue=8,
                               max_pending_per_client=1)

        def work(client):
            flood = [client.submit(build_request_payload(
                "ckey", scale=scale, client="flood"))
                for scale in range(1, 4)]
            other = client.submit(build_request_payload(
                "ckey", scale=9, client="other"))
            return flood, other

        flood, other = serve_and_call(server, work, timeout_s=300)
        statuses = [status for status, _b, _h in flood]
        assert statuses[0] == 202
        assert statuses.count(429) == 2, \
            "the flooding client must be shed at its fairness bound"
        assert all(body["reason"] == "client"
                   for status, body, _h in flood if status == 429)
        assert other[0] == 202, "other clients must still be admitted"


@pytest.mark.slow
def test_sigkill_mid_queue_jobs_resolve_after_restart(tmp_path):
    """The durable-jobs acceptance: SIGKILL with jobs still queued,
    restart, and every pre-kill job id resolves by polling alone."""
    checkpoint = tmp_path / "ckpt"
    proc, port = spawn_server(tmp_path, "serve1.log", "--lanes", "2",
                              checkpoint=checkpoint)
    job_ids = []
    try:
        client = ServiceClient(port=port, timeout_s=30)
        for scale in (1, 2, 3):
            status, body, _ = client.submit(
                build_request_payload("ckey", scale=scale))
            assert status == 202
            job_ids.append(body["id"])
    finally:
        # kill immediately: with three jobs just admitted and ~1s
        # evaluations on 2 lanes, at least one is still queued
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

    assert (checkpoint / "jobs.journal").exists()

    proc, port = spawn_server(tmp_path, "serve2.log", "--lanes", "2",
                              checkpoint=checkpoint)
    try:
        client = ServiceClient(port=port, timeout_s=30)
        for job_id in job_ids:
            status, _job = client.job(job_id)
            assert status == 200, \
                f"pre-kill job {job_id} must be resurrected"
        for job_id in job_ids:
            job = client.wait(job_id, timeout_s=180)
            assert job["state"] == "done"
            assert job["result"]["verified"] is True
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait(timeout=30)

"""Shared helpers for the service suite: real ``repro serve`` spawns.

The subprocess tests all follow the same recipe — spawn ``repro serve
--port 0``, parse the ephemeral port from the stderr announce line,
talk to it over real HTTP — so the spawn/announce dance lives here.
"""

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro

ANNOUNCE_RE = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")


def spawn_server(tmp_path, log_name, *extra_args, checkpoint=None):
    """Spawn ``repro serve --port 0 [extra_args]``; return (proc, port).

    The ephemeral port is parsed from the machine-readable announce
    line the server prints to stderr (captured into
    ``tmp_path/log_name``).  Fails the test if the server dies before
    announcing or never announces.
    """
    src_dir = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p)
    argv = [sys.executable, "-m", "repro", "serve", "--port", "0"]
    if checkpoint is not None:
        argv += ["--checkpoint", str(checkpoint)]
    argv += list(extra_args)
    log = tmp_path / log_name
    proc = subprocess.Popen(
        argv, stdout=subprocess.DEVNULL, stderr=open(log, "w"), env=env)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        match = ANNOUNCE_RE.search(log.read_text()) \
            if log.exists() else None
        if match:
            return proc, int(match.group(1))
        if proc.poll() is not None:
            pytest.fail(f"server died before announcing: "
                        f"{log.read_text()}")
        time.sleep(0.05)
    proc.kill()
    pytest.fail("server never announced its port")

"""Job lifecycle: coalescing, admission control, fairness, eviction.

These tests drive :class:`JobManager` directly — submission is
synchronous, so admission and coalescing are testable without a running
event loop; the drain-loop tests run a real loop over a stub kernel so
they stay fast.
"""

import asyncio

import pytest

from repro.obs import Tracer
from repro.service import (
    AdmissionError,
    JobManager,
    PartitionRequest,
    job_id_for_digest,
)


class StubResult:
    def __init__(self, payload):
        self.payload = payload
        self.elapsed_s = 0.01

    def to_dict(self):
        return dict(self.payload)


class StubCore:
    """Stands in for ServiceCore: records calls, optionally fails."""

    def __init__(self, fail_on=()):
        self.calls = []
        self.fail_on = set(fail_on)

    def evaluate(self, request, progress=None):
        self.calls.append(request)
        label = request.workload_label()
        if label in self.fail_on:
            raise RuntimeError(f"stub failure for {label}")
        if progress is not None:
            progress(1, 1)
        return StubResult({"app": label, "verified": True})

    def spawn(self):
        return self

    def close(self):
        pass


def request_for(app="ckey", **overrides):
    payload = {"app": app}
    payload.update(overrides)
    return PartitionRequest.from_dict(payload)


async def drain_until_finished(manager, *jobs, timeout_s=10.0):
    await manager.start()
    async def wait():
        while not all(job.finished for job in jobs):
            await asyncio.sleep(0.005)
    await asyncio.wait_for(wait(), timeout_s)


# ---------------------------------------------------------------------------
# Identity and coalescing
# ---------------------------------------------------------------------------

class TestCoalescing:
    def test_job_id_is_digest_derived(self):
        request = request_for()
        job_id = job_id_for_digest(request.digest())
        assert job_id == "j" + request.digest()[:16]
        manager = JobManager(StubCore())
        job, created = manager.submit(request)
        assert created is True
        assert job.id == job_id

    def test_identical_requests_coalesce_onto_one_job(self):
        tracer = Tracer("jobs")
        manager = JobManager(StubCore(), tracer=tracer)
        first, created_first = manager.submit(request_for())
        second, created_second = manager.submit(
            request_for(client="someone-else"))
        assert created_first and not created_second
        assert second is first
        assert first.waiters == 2
        assert tracer.counters["service.jobs.submitted"] == 1
        assert tracer.counters["service.jobs.coalesced"] == 1

    def test_distinct_workloads_get_distinct_jobs(self):
        manager = JobManager(StubCore())
        one, _ = manager.submit(request_for(scale=1))
        two, _ = manager.submit(request_for(scale=2))
        assert one.id != two.id

    def test_coalescing_bypasses_admission_bounds(self):
        # The queue and the client's share are both exhausted, but the
        # resubmission costs no evaluation, so it is always admitted.
        manager = JobManager(StubCore(), max_queue=1,
                             max_pending_per_client=1)
        job, _ = manager.submit(request_for())
        again, created = manager.submit(request_for())
        assert again is job and not created


# ---------------------------------------------------------------------------
# Admission control and fairness
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_queue_bound_rejects_with_retry_after(self):
        tracer = Tracer("jobs")
        manager = JobManager(StubCore(), max_queue=2,
                             max_pending_per_client=8, tracer=tracer)
        manager.submit(request_for(scale=1))
        manager.submit(request_for(scale=2))
        with pytest.raises(AdmissionError) as excinfo:
            manager.submit(request_for(scale=3))
        assert excinfo.value.reason == "queue"
        assert excinfo.value.retry_after_s >= 1
        assert tracer.counters["service.rejected.queue"] == 1

    def test_client_share_rejects_before_queue_fills(self):
        tracer = Tracer("jobs")
        manager = JobManager(StubCore(), max_queue=8,
                             max_pending_per_client=1, tracer=tracer)
        manager.submit(request_for(scale=1, client="flooder"))
        with pytest.raises(AdmissionError) as excinfo:
            manager.submit(request_for(scale=2, client="flooder"))
        assert excinfo.value.reason == "client"
        assert tracer.counters["service.rejected.client"] == 1
        # another client still gets in
        job, created = manager.submit(request_for(scale=2, client="other"))
        assert created

    def test_default_client_share_is_a_quarter_of_the_queue(self):
        assert JobManager(StubCore(),
                          max_queue=64).max_pending_per_client == 16
        assert JobManager(StubCore(),
                          max_queue=2).max_pending_per_client == 1

    @pytest.mark.parametrize("kwargs", [
        {"max_queue": 0}, {"max_finished": 0},
    ])
    def test_nonpositive_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            JobManager(StubCore(), **kwargs)


# ---------------------------------------------------------------------------
# Execution: the drain loop
# ---------------------------------------------------------------------------

class TestExecution:
    def test_jobs_run_to_done_with_results(self):
        tracer = Tracer("jobs")
        core = StubCore()
        manager = JobManager(core, tracer=tracer)

        async def scenario():
            job, _ = manager.submit(request_for())
            await drain_until_finished(manager, job)
            await manager.close()
            return job

        job = asyncio.run(scenario())
        assert job.state == "done"
        assert job.result == {"app": "ckey", "verified": True}
        assert job.started_s is not None and job.finished_s is not None
        assert len(core.calls) == 1
        assert tracer.counters["service.jobs.completed"] == 1

    def test_kernel_failure_yields_failed_job(self):
        tracer = Tracer("jobs")
        manager = JobManager(StubCore(fail_on={"ckey"}), tracer=tracer)

        async def scenario():
            job, _ = manager.submit(request_for())
            await drain_until_finished(manager, job)
            await manager.close()
            return job

        job = asyncio.run(scenario())
        assert job.state == "failed"
        assert job.result is None
        assert "stub failure" in job.error
        assert tracer.counters["service.jobs.failed"] == 1

    def test_finished_jobs_are_evicted_past_the_bound(self):
        tracer = Tracer("jobs")
        manager = JobManager(StubCore(), max_finished=1, tracer=tracer)

        async def scenario():
            first, _ = manager.submit(request_for(scale=1))
            second, _ = manager.submit(request_for(scale=2))
            await drain_until_finished(manager, first, second)
            await manager.close()
            return first, second

        first, second = asyncio.run(scenario())
        assert manager.get(first.id) is None  # oldest evicted
        assert manager.get(second.id) is second
        assert tracer.counters["service.jobs.evicted"] == 1

    def test_descriptor_shape_matches_job_fields(self):
        from repro.service import JOB_FIELDS

        manager = JobManager(StubCore())
        job, _ = manager.submit(request_for())
        descriptor = job.to_dict()
        assert tuple(descriptor) == JOB_FIELDS
        without = job.to_dict(include_result=False)
        assert without["result"] is None

    def test_stats_counts_states(self):
        manager = JobManager(StubCore(), max_queue=4)
        manager.submit(request_for())
        stats = manager.stats()
        assert stats["states"] == {"queued": 1, "running": 0,
                                   "done": 0, "failed": 0}
        assert stats["max_queue"] == 4
        assert stats["retry_after_s"] >= 1
        assert [lane["lane"] for lane in stats["lanes"]] == [0]


# ---------------------------------------------------------------------------
# Event streams
# ---------------------------------------------------------------------------

class TestEvents:
    def test_lifecycle_events_arrive_in_order(self):
        manager = JobManager(StubCore(), tracer=Tracer("jobs"))

        async def scenario():
            job, _ = manager.submit(request_for())
            events = []
            async for event in manager.events(job.id):
                events.append(event)
            await manager.close()
            return job, events

        async def run():
            await manager.start()
            return await scenario()

        job, events = asyncio.run(run())
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "finished"
        assert "started" in kinds
        assert [event["seq"] for event in events] == list(range(len(events)))
        assert all(event["id"] == job.id for event in events)

    def test_stream_on_finished_job_replays_history(self):
        manager = JobManager(StubCore())

        async def scenario():
            job, _ = manager.submit(request_for())
            await drain_until_finished(manager, job)
            events = []
            async for event in manager.events(job.id):
                events.append(event)
            await manager.close()
            return events

        events = asyncio.run(scenario())
        assert events[-1]["event"] == "finished"
        assert events[-1]["state"] == "done"

    def test_unknown_job_raises(self):
        manager = JobManager(StubCore())

        async def scenario():
            async for _event in manager.events("jdeadbeef"):
                pass

        with pytest.raises(KeyError):
            asyncio.run(scenario())

    def test_eviction_never_drops_a_job_with_waiters(self):
        # Regression: under a 1-entry finished-registry bound, a job
        # with an attached event-stream subscriber must survive
        # eviction even when it is the oldest finished job.
        tracer = Tracer("jobs")
        manager = JobManager(StubCore(), max_finished=1, tracer=tracer)

        async def scenario():
            first, _ = manager.submit(request_for(scale=1))
            await drain_until_finished(manager, first)

            stream = manager.events(first.id)
            opening = await stream.__anext__()  # hold mid-iteration
            assert opening["event"] == "queued"
            assert first.subscribers == 1

            second, _ = manager.submit(request_for(scale=2))
            third, _ = manager.submit(request_for(scale=3))
            await drain_until_finished(manager, second, third)

            # The subscribed job is skipped; eviction trims the rest.
            assert manager.get(first.id) is first
            await stream.aclose()
            assert first.subscribers == 0
            await manager.close()
            return second, third

        second, third = asyncio.run(scenario())
        # The subscribed job held the registry's only slot the whole
        # time, so the unsubscribed finished jobs bore the evictions.
        assert tracer.counters["service.jobs.evicted"] >= 2
        assert manager.get(second.id) is None
        assert manager.get(third.id) is None

"""Request validation, digests and the verify-gated evaluation kernel.

The central contract under test: a :class:`PartitionRequest` evaluated
through :class:`ServiceCore` is *bit-identical* to the same workload run
through the ``repro run`` CLI path — same summary text, same numbers —
and a result whose invariant audit has ERROR findings is refused, never
served.
"""

import pytest

from repro.cli import main
from repro.core.explore import EvaluationCache
from repro.obs import Tracer
from repro.service import (
    PartitionRequest,
    RequestError,
    ServiceCore,
    VerificationRejected,
)
from repro.verify import VerificationReport
from repro.verify.findings import Finding, Severity
from tests.conftest import DOT_SOURCE


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------

class TestRequestValidation:
    def test_bundled_app_round_trips(self):
        request = PartitionRequest.from_dict(
            {"app": "ckey", "scale": 2, "optimize": True})
        assert request.app == "ckey"
        assert request.scale == 2
        assert request.optimize is True
        again = PartitionRequest.from_dict(request.to_dict())
        assert again == request

    def test_source_round_trips(self):
        request = PartitionRequest.from_dict(
            {"source": DOT_SOURCE, "name": "dot",
             "globals": {"out": [0] * 8}})
        assert request.app is None
        assert request.name == "dot"
        assert PartitionRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize("payload, field", [
        ({}, "source"),
        ({"app": "ckey", "source": "x"}, "app"),
        ({"app": "no-such-app"}, "app"),
        ({"source": "   "}, "source"),
        ({"app": "ckey", "name": "x"}, "name"),
        ({"app": "ckey", "args": [1]}, "args"),
        ({"app": "ckey", "globals": {}}, "globals"),
        ({"app": "ckey", "scale": 0}, "scale"),
        ({"app": "ckey", "scale": True}, "scale"),
        ({"app": "ckey", "optimize": 1}, "optimize"),
        ({"app": "ckey", "tech": "nm-nonsense"}, "tech"),
        ({"app": "ckey", "client": ""}, "client"),
        ({"app": "ckey", "schema": "wrong"}, "schema"),
        ({"app": "ckey", "version": 999}, "version"),
        ({"app": "ckey", "bogus": 1}, "bogus"),
        ({"source": DOT_SOURCE, "args": ["one"]}, "args"),
    ])
    def test_rejections_name_the_field(self, payload, field):
        with pytest.raises(RequestError) as excinfo:
            PartitionRequest.from_dict(payload)
        assert excinfo.value.field == field

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError):
            PartitionRequest.from_dict([1, 2, 3])

    def test_default_tech_applies_only_when_omitted(self):
        request = PartitionRequest.from_dict(
            {"app": "ckey"}, default_tech="cmos6-45nm")
        assert request.tech == "cmos6-45nm"
        explicit = PartitionRequest.from_dict(
            {"app": "ckey", "tech": "cmos6-800nm"},
            default_tech="cmos6-45nm")
        assert explicit.tech == "cmos6-800nm"


# ---------------------------------------------------------------------------
# Digests (the coalescing key)
# ---------------------------------------------------------------------------

class TestDigests:
    def test_semantically_equal_requests_share_a_digest(self):
        one = PartitionRequest.from_dict({"app": "ckey"})
        two = PartitionRequest.from_dict(
            {"app": "ckey", "scale": 1, "optimize": False,
             "client": "somebody-else"})
        # client identity is an admission concern, not workload content
        assert one.digest() == two.digest()

    @pytest.mark.parametrize("payload", [
        {"app": "ckey", "scale": 2},
        {"app": "ckey", "optimize": True},
        {"app": "ckey", "tech": "cmos6-45nm"},
        {"app": "digs"},
    ])
    def test_different_workloads_differ(self, payload):
        base = PartitionRequest.from_dict({"app": "ckey"})
        assert PartitionRequest.from_dict(payload).digest() != base.digest()


# ---------------------------------------------------------------------------
# The kernel: CLI bit-identity and the verify gate
# ---------------------------------------------------------------------------

class TestServiceCore:
    def test_result_is_bit_identical_to_cli_run(self, capsys):
        assert main(["run", "ckey"]) == 0
        cli_stdout = capsys.readouterr().out
        with ServiceCore() as core:
            result = core.evaluate(
                PartitionRequest.from_dict({"app": "ckey"}))
        data = result.to_dict()
        assert data["summary"] + "\n" == cli_stdout
        assert data["verified"] is True
        assert data["accepted"] is True

    def test_engines_share_cache_across_tech_nodes(self):
        cache = EvaluationCache()
        tracer = Tracer("core")
        with ServiceCore(cache=cache, tracer=tracer) as core:
            core.evaluate(PartitionRequest.from_dict({"app": "ckey"}))
            entries_one_node = cache.stats()["entries"]
            core.evaluate(PartitionRequest.from_dict(
                {"app": "ckey", "tech": "cmos6-45nm"}))
        stats = cache.stats()
        # distinct node => distinct library digest => no key aliasing
        assert stats["entries"] == 2 * entries_one_node
        assert tracer.counters["service.evaluations"] == 2

    def test_verify_gate_refuses_error_findings(self, monkeypatch):
        import dataclasses

        from repro.core.explore import ExplorationEngine

        real_run_flow = ExplorationEngine.run_flow

        def poisoned_run_flow(self, app):
            result = real_run_flow(self, app)
            report = VerificationReport(label="poisoned")
            report.add(Finding(
                check="test.poison", severity=Severity.ERROR,
                layer="core", message="deliberately broken invariant"))
            return dataclasses.replace(result, verification=report)

        monkeypatch.setattr(ExplorationEngine, "run_flow",
                            poisoned_run_flow)
        tracer = Tracer("gate")
        with ServiceCore(tracer=tracer) as core:
            with pytest.raises(VerificationRejected) as excinfo:
                core.evaluate(PartitionRequest.from_dict({"app": "ckey"}))
        assert "verify gate" in str(excinfo.value)
        assert tracer.counters["service.verify.rejected"] == 1

    def test_verify_gate_refuses_missing_report(self, monkeypatch):
        import dataclasses

        from repro.core.explore import ExplorationEngine

        real_run_flow = ExplorationEngine.run_flow

        def stripped_run_flow(self, app):
            result = real_run_flow(self, app)
            return dataclasses.replace(result, verification=None)

        monkeypatch.setattr(ExplorationEngine, "run_flow",
                            stripped_run_flow)
        with ServiceCore() as core:
            with pytest.raises(VerificationRejected):
                core.evaluate(PartitionRequest.from_dict({"app": "ckey"}))

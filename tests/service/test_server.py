"""HTTP surface and the end-to-end coalescing acceptance criterion.

Routing, error mapping and backpressure are unit-tested through the
server's synchronous ``_route`` dispatcher (no sockets needed); the
acceptance tests then run a real asyncio server on an OS-assigned port
and prove over the wire that N concurrent identical submissions produce
exactly one underlying evaluation whose result is bit-identical to the
``repro run`` CLI path.
"""

import asyncio
import json
import threading

import pytest

from repro.cli import main
from repro.obs import Tracer
from repro.service import (
    ServiceClient,
    ServiceServer,
    build_request_payload,
)


def route(server, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    return server._route(method, path, body)


# ---------------------------------------------------------------------------
# Routing and error mapping (no sockets)
# ---------------------------------------------------------------------------

class TestRouting:
    def test_healthz_reports_schema(self):
        server = ServiceServer()
        status, body, _headers = route(server, "GET", "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["schema"] == "repro-service"
        assert body["version"] == 2
        assert body["lanes"] == 1

    def test_unknown_route_is_404(self):
        server = ServiceServer(tracer=Tracer("srv"))
        status, body, _ = route(server, "GET", "/v1/nonsense")
        assert status == 404
        assert "no route" in body["error"]
        assert server.tracer.counters["service.http.errors"] == 1

    def test_wrong_method_is_405(self):
        server = ServiceServer()
        assert route(server, "DELETE", "/v1/jobs")[0] == 405
        assert route(server, "POST", "/v1/jobs/j123")[0] == 405

    def test_malformed_json_is_400(self):
        server = ServiceServer()
        status, body, _ = server._route("POST", "/v1/jobs", b"{nope")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_validation_error_is_400_naming_the_field(self):
        server = ServiceServer()
        status, body, _ = route(server, "POST", "/v1/jobs",
                                {"app": "no-such-app"})
        assert status == 400
        assert body["field"] == "app"
        assert "no-such-app" in body["error"]

    def test_unknown_job_is_404(self):
        server = ServiceServer()
        status, body, _ = route(server, "GET", "/v1/jobs/jdeadbeef")
        assert status == 404

    def test_submission_returns_202_descriptor(self):
        server = ServiceServer()
        status, body, _ = route(server, "POST", "/v1/jobs",
                                build_request_payload("ckey"))
        assert status == 202
        assert body["state"] == "queued"
        assert body["created"] is True
        assert body["id"].startswith("j")
        # identical resubmission: same id, not created, a second waiter
        status, again, _ = route(server, "POST", "/v1/jobs",
                                 build_request_payload("ckey"))
        assert status == 202
        assert again["id"] == body["id"]
        assert again["created"] is False
        assert again["waiters"] == 2

    def test_job_listing_omits_results(self):
        server = ServiceServer()
        route(server, "POST", "/v1/jobs", build_request_payload("ckey"))
        status, body, _ = route(server, "GET", "/v1/jobs")
        assert status == 200
        assert len(body["jobs"]) == 1
        assert body["jobs"][0]["result"] is None

    def test_backpressure_is_429_with_retry_after(self):
        # The manager's worker is not running, so queued jobs never
        # drain: the second distinct request overflows max_queue=1.
        server = ServiceServer(max_queue=1, max_pending_per_client=8,
                               tracer=Tracer("srv"))
        assert route(server, "POST", "/v1/jobs",
                     build_request_payload("ckey"))[0] == 202
        status, body, headers = route(
            server, "POST", "/v1/jobs",
            build_request_payload("ckey", scale=2))
        assert status == 429
        assert body["reason"] == "queue"
        assert headers["Retry-After"] == str(body["retry_after_s"])
        assert body["retry_after_s"] >= 1
        assert server.tracer.counters["service.rejected.queue"] == 1

    def test_per_client_fairness_is_429(self):
        server = ServiceServer(max_queue=8, max_pending_per_client=1)
        assert route(server, "POST", "/v1/jobs",
                     build_request_payload("ckey", client="flood"))[0] \
            == 202
        status, body, _ = route(
            server, "POST", "/v1/jobs",
            build_request_payload("ckey", scale=2, client="flood"))
        assert status == 429
        assert body["reason"] == "client"

    def test_metrics_shape(self):
        server = ServiceServer(tracer=Tracer("srv"))
        route(server, "POST", "/v1/jobs", build_request_payload("ckey"))
        status, body, _ = route(server, "GET", "/v1/metrics")
        assert status == 200
        assert body["schema"] == "repro-service"
        assert body["counters"]["service.jobs.submitted"] == 1
        assert set(body["cache"]) == {"entries", "hits", "misses",
                                      "evictions", "hit_rate"}
        assert body["jobs"]["states"]["queued"] == 1

    def test_events_route_unknown_job_is_404(self):
        server = ServiceServer()
        status, body, _ = route(server, "GET",
                                "/v1/jobs/jdeadbeef/events")
        assert status == 404
        assert "jdeadbeef" in body["error"]

    def test_events_route_wrong_method_is_405(self):
        server = ServiceServer()
        assert route(server, "POST", "/v1/jobs/j123/events")[0] == 405

    def test_events_path_parser(self):
        parse = ServiceServer._events_path_job
        assert parse("GET", "/v1/jobs/j123/events") == "j123"
        assert parse("POST", "/v1/jobs/j123/events") is None
        assert parse("GET", "/v1/jobs//events") is None
        assert parse("GET", "/v1/jobs/a/b/events") is None
        assert parse("GET", "/v1/jobs/j123") is None

    def test_default_tech_flows_into_requests(self):
        server = ServiceServer(default_tech="cmos6-45nm")
        status, body, _ = route(server, "POST", "/v1/jobs",
                                build_request_payload("ckey"))
        assert status == 202
        assert body["tech"] == "cmos6-45nm"


# ---------------------------------------------------------------------------
# End-to-end over real sockets
# ---------------------------------------------------------------------------

def serve_and_call(server, work, timeout_s=120.0):
    """Start ``server`` on an OS port, run ``work(client)`` in a thread."""

    async def scenario():
        await server.start()
        client = ServiceClient(port=server.port)
        try:
            return await asyncio.wait_for(
                asyncio.get_running_loop().run_in_executor(
                    None, work, client),
                timeout_s)
        finally:
            await server.close()

    return asyncio.run(scenario())


class TestEndToEnd:
    def test_concurrent_identical_posts_coalesce_to_one_evaluation(
            self, capsys):
        """The tentpole acceptance: N identical concurrent POSTs -> one
        job, one underlying evaluation, every waiter served the same
        verify-gated result, bit-identical to the CLI path."""
        assert main(["run", "ckey"]) == 0
        cli_stdout = capsys.readouterr().out

        fan_out = 6
        tracer = Tracer("e2e")
        server = ServiceServer(tracer=tracer)

        def work(client):
            responses = [None] * fan_out
            def post(index):
                responses[index] = client.submit(
                    build_request_payload("ckey", client=f"c{index}"))
            threads = [threading.Thread(target=post, args=(i,))
                       for i in range(fan_out)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            job_ids = {body["id"] for _status, body, _h in responses}
            assert all(status == 202 for status, _b, _h in responses)
            assert len(job_ids) == 1, "identical requests must coalesce"
            job = client.wait(job_ids.pop(), timeout_s=60)
            metrics = client.metrics()
            return job, metrics

        job, metrics = serve_and_call(server, work)
        assert job["state"] == "done"
        assert job["waiters"] == fan_out
        counters = metrics["counters"]
        assert counters["service.jobs.submitted"] == 1
        assert counters["service.jobs.coalesced"] == fan_out - 1
        assert counters["service.evaluations"] == 1, \
            "N identical submissions must cost exactly one evaluation"
        # served result == CLI output, and it passed the verify gate
        result = job["result"]
        assert result["verified"] is True
        assert result["summary"] + "\n" == cli_stdout

    def test_finished_job_resubmission_serves_cached_result(self):
        server = ServiceServer()

        def work(client):
            status, body, _ = client.submit(build_request_payload("ckey"))
            job = client.wait(body["id"], timeout_s=60)
            # resubmit after completion: the 202 carries the result
            status, again, _ = client.submit(build_request_payload("ckey"))
            return job, status, again

        job, status, again = serve_and_call(server, work)
        assert status == 202
        assert again["id"] == job["id"]
        assert again["state"] == "done"
        assert again["created"] is False
        assert again["result"] == job["result"]

    def test_event_stream_reports_lifecycle_over_http(self):
        """Streaming acceptance: the chunked event stream replays the
        job's history and follows it live through ``finished``, with
        sweep progress threaded up from the exploration engine."""
        server = ServiceServer(tracer=Tracer("stream"))

        def work(client):
            status, body, _ = client.submit(build_request_payload("ckey"))
            assert status == 202
            events = list(client.events(body["id"]))
            _status, job = client.job(body["id"])
            return events, job

        events, job = serve_and_call(server, work)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "finished"
        assert "started" in kinds
        assert [event["seq"] for event in events] \
            == list(range(len(events)))
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, "a real sweep must report progress"
        assert all(0 <= e["done"] <= e["total"] for e in progress)
        assert events[-1]["state"] == job["state"] == "done"

    def test_failed_evaluation_surfaces_as_failed_job(self):
        # An unpartitionable one-liner: compiles and runs, but the flow
        # cannot find a beneficial candidate -- the job must still
        # terminate (done or failed, never wedged) and report honestly.
        server = ServiceServer()
        payload = {
            "source": "func main() -> int { return 1; }",
            "name": "tiny",
        }

        def work(client):
            status, body, _ = client.submit(payload)
            assert status == 202
            return client.wait(body["id"], timeout_s=60)

        job = serve_and_call(server, work)
        assert job["state"] in ("done", "failed")
        if job["state"] == "done":
            assert job["result"]["accepted"] is False

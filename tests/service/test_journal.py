"""The durable job journal: framing, corruption tolerance, replay.

Unit-level coverage for :mod:`repro.service.journal` plus the
:class:`JobManager` replay integration — finished jobs resolve polls
after a restart, interrupted jobs are requeued.
"""

import asyncio
import json
import struct

import pytest

from repro.obs import Tracer
from repro.service import (
    JOB_JOURNAL_FILENAME,
    JOB_JOURNAL_MAGIC,
    JOB_RECORD_KINDS,
    JobJournal,
    JobManager,
    PartitionRequest,
    job_id_for_digest,
    scan_job_journal,
)
from repro.service.journal import _RECORD_HEADER, _record_digest

from tests.service.test_jobs import (
    StubCore,
    drain_until_finished,
    request_for,
)


def frame(blob):
    return _RECORD_HEADER.pack(len(blob), _record_digest(blob)) + blob


def submitted_record(request, job_id=None):
    digest = request.digest()
    return {"event": "submitted",
            "id": job_id or job_id_for_digest(digest),
            "digest": digest, "submitted_s": 1.0,
            "request": request.to_dict()}


# ---------------------------------------------------------------------------
# Framing and replay
# ---------------------------------------------------------------------------

class TestFraming:
    def test_fresh_journal_writes_magic(self, tmp_path):
        path = tmp_path / JOB_JOURNAL_FILENAME
        with JobJournal(str(path)) as journal:
            assert journal.records == []
            assert journal.stats()["records"] == 0
        assert path.read_bytes() == JOB_JOURNAL_MAGIC

    def test_append_then_reopen_replays_in_order(self, tmp_path):
        path = str(tmp_path / "jobs.journal")
        records = [{"event": "submitted", "id": f"j{i}", "n": i}
                   for i in range(5)]
        with JobJournal(path) as journal:
            for record in records:
                journal.append(record)
            assert journal.appended == 5
        tracer = Tracer("journal")
        with JobJournal(path, tracer=tracer) as journal:
            assert journal.records == records
            assert journal.corrupt == 0 and journal.skipped == 0
        assert tracer.counters["service.journal.replayed"] == 5

    def test_torn_tail_is_truncated_away(self, tmp_path):
        path = tmp_path / "jobs.journal"
        with JobJournal(str(path)) as journal:
            journal.append({"event": "submitted", "id": "j1"})
            journal.append({"event": "finished", "id": "j1"})
        intact = path.stat().st_size
        # simulate a SIGKILL mid-append: half a record at the tail
        blob = json.dumps({"event": "finished", "id": "j2"}).encode()
        with open(path, "ab") as fh:
            fh.write(frame(blob)[:-4])
        tracer = Tracer("journal")
        with JobJournal(str(path), tracer=tracer) as journal:
            assert [r["id"] for r in journal.records] == ["j1", "j1"]
            assert journal.corrupt == 1
        assert path.stat().st_size == intact, "tail must be truncated"
        assert tracer.counters["service.journal.corrupt"] == 1
        # and a post-truncation append is replayable
        with JobJournal(str(path)) as journal:
            journal.append({"event": "submitted", "id": "j3"})
        assert len(JobJournal(str(path)).records) == 3

    def test_checksum_mismatch_stops_replay(self, tmp_path):
        path = tmp_path / "jobs.journal"
        with JobJournal(str(path)) as journal:
            journal.append({"event": "submitted", "id": "j1"})
        blob = json.dumps({"event": "finished", "id": "j1"}).encode()
        bad = _RECORD_HEADER.pack(len(blob), b"\x00" * 8) + blob
        with open(path, "ab") as fh:
            fh.write(bad)
        journal = JobJournal(str(path))
        assert [r["id"] for r in journal.records] == ["j1"]
        assert journal.corrupt == 1
        journal.close()

    def test_magic_mismatch_resets_the_file(self, tmp_path):
        path = tmp_path / "jobs.journal"
        path.write_bytes(b"NOT-A-JOURNAL\n" + b"x" * 64)
        journal = JobJournal(str(path))
        assert journal.records == []
        assert journal.corrupt == 1
        journal.append({"event": "submitted", "id": "j1"})
        journal.close()
        assert path.read_bytes().startswith(JOB_JOURNAL_MAGIC)
        assert len(JobJournal(str(path)).records) == 1

    def test_intact_frame_with_bad_body_is_skipped_not_fatal(
            self, tmp_path):
        path = tmp_path / "jobs.journal"
        with JobJournal(str(path)) as journal:
            journal.append({"event": "submitted", "id": "j1"})
        with open(path, "ab") as fh:
            fh.write(frame(b"{not json"))           # undecodable body
            fh.write(frame(b'{"event": "bogus"}'))  # unknown kind
        with JobJournal(str(path)) as journal:
            journal.append({"event": "finished", "id": "j1"})
        journal = JobJournal(str(path))
        # the good record BEHIND the bad frames still replays
        assert [r["event"] for r in journal.records] \
            == ["submitted", "finished"]
        assert journal.skipped == 2 and journal.corrupt == 0
        journal.close()

    def test_scan_is_read_only(self, tmp_path):
        path = tmp_path / "jobs.journal"
        with JobJournal(str(path)) as journal:
            journal.append({"event": "submitted", "id": "j1"})
        with open(path, "ab") as fh:
            fh.write(b"torn")
        before = path.read_bytes()
        audit = scan_job_journal(str(path))
        assert audit == {"ok": True, "records": 1, "corrupt": 1,
                         "skipped": 0, "bytes_good": audit["bytes_good"],
                         "bytes_total": len(before)}
        assert path.read_bytes() == before, "scan must not rewrite"

    def test_record_kinds_are_pinned(self):
        assert JOB_RECORD_KINDS == ("submitted", "finished")


# ---------------------------------------------------------------------------
# Folding
# ---------------------------------------------------------------------------

class TestFolding:
    def test_first_submit_and_last_finish_win(self, tmp_path):
        path = str(tmp_path / "jobs.journal")
        with JobJournal(path) as journal:
            journal.append({"event": "submitted", "id": "j1", "gen": 1})
            journal.append({"event": "finished", "id": "j1", "gen": 1})
            journal.append({"event": "submitted", "id": "j1", "gen": 2})
            journal.append({"event": "finished", "id": "j1", "gen": 2})
        folded = JobJournal(path).jobs_by_id()
        assert folded["j1"]["submitted"]["gen"] == 1
        assert folded["j1"]["finished"]["gen"] == 2

    def test_finish_without_submit_is_dropped(self, tmp_path):
        path = str(tmp_path / "jobs.journal")
        with JobJournal(path) as journal:
            journal.append({"event": "finished", "id": "jorphan"})
            journal.append({"event": "submitted", "id": "j1"})
        folded = JobJournal(path).jobs_by_id()
        assert "jorphan" not in folded
        assert folded["j1"]["finished"] is None


# ---------------------------------------------------------------------------
# Manager replay integration
# ---------------------------------------------------------------------------

class TestManagerReplay:
    def run_to_done(self, manager, *requests):
        async def scenario():
            jobs = [manager.submit(request)[0] for request in requests]
            await drain_until_finished(manager, *jobs)
            await manager.close()
            return jobs
        return asyncio.run(scenario())

    def test_finished_jobs_resolve_polls_after_restart(self, tmp_path):
        path = str(tmp_path / "jobs.journal")
        with JobJournal(path) as journal:
            manager = JobManager(StubCore(), journal=journal)
            (job,) = self.run_to_done(manager, request_for())
        # a new process: fresh manager, fresh journal handle, same file
        core = StubCore()
        with JobJournal(path) as journal:
            revived = JobManager(core, journal=journal)
            again = revived.get(job.id)
            assert again is not None
            assert again.state == "done"
            assert again.result == job.result
            assert again.events[-1]["event"] == "finished"
        assert core.calls == [], "replayed results must not re-evaluate"

    def test_interrupted_jobs_are_requeued_on_restart(self, tmp_path):
        path = str(tmp_path / "jobs.journal")
        request = request_for()
        with JobJournal(path) as journal:
            # submitted, never finished: the shape a SIGKILL leaves
            journal.append(submitted_record(request))
        core = StubCore()
        tracer = Tracer("replay")
        with JobJournal(path) as journal:
            manager = JobManager(core, tracer=tracer, journal=journal)
            job = manager.get(job_id_for_digest(request.digest()))
            assert job is not None and job.state == "queued"
            assert tracer.counters["service.journal.requeued"] == 1

            async def scenario():
                await drain_until_finished(manager, job)
                await manager.close()
            asyncio.run(scenario())
        assert job.state == "done"
        assert len(core.calls) == 1
        # the completion was journaled too: a third boot replays it done
        with JobJournal(path) as journal:
            third = JobManager(StubCore(), journal=journal)
            assert third.get(job.id).state == "done"

    def test_unreadable_request_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "jobs.journal")
        good = request_for()
        with JobJournal(path) as journal:
            journal.append({"event": "submitted", "id": "jbad",
                            "digest": "0" * 64,
                            "request": {"app": "no-such-app"}})
            journal.append(submitted_record(good))
        tracer = Tracer("replay")
        with JobJournal(path) as journal:
            manager = JobManager(StubCore(), tracer=tracer,
                                 journal=journal)
            assert manager.get("jbad") is None
            assert manager.get(
                job_id_for_digest(good.digest())) is not None
        assert tracer.counters["service.journal.skipped"] == 1

    def test_submissions_and_finishes_are_journaled_live(self, tmp_path):
        path = str(tmp_path / "jobs.journal")
        tracer = Tracer("journal")
        with JobJournal(path, tracer=tracer) as journal:
            manager = JobManager(StubCore(), tracer=tracer,
                                 journal=journal)
            self.run_to_done(manager, request_for(scale=1),
                             request_for(scale=2))
        assert tracer.counters["service.journal.appended"] == 4
        audit = scan_job_journal(path)
        assert audit["ok"] and audit["records"] == 4

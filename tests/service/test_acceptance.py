"""Acceptance: a SIGKILLed server restarts warm from its checkpoint.

Spawns real ``repro serve --checkpoint`` subprocesses: the first is
killed with SIGKILL while a job is in flight (after the journal holds at
least one record); the restarted server must replay the journal
(``explore.checkpoint.loaded`` > 0 in ``/v1/metrics``), finish the
resubmitted job, and serve the exact result an uninterrupted run
produces.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core.checkpoint import scan_journal
from repro.service import (
    PartitionRequest,
    ServiceClient,
    ServiceCore,
    build_request_payload,
)

ANNOUNCE_RE = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")


def spawn_server(tmp_path, checkpoint, log_name):
    src_dir = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p)
    log = tmp_path / log_name
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--checkpoint", str(checkpoint)],
        stdout=subprocess.DEVNULL, stderr=open(log, "w"), env=env)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        match = ANNOUNCE_RE.search(log.read_text()) \
            if log.exists() else None
        if match:
            return proc, int(match.group(1))
        if proc.poll() is not None:
            pytest.fail(f"server died before announcing: "
                        f"{log.read_text()}")
        time.sleep(0.05)
    proc.kill()
    pytest.fail("server never announced its port")


@pytest.mark.slow
def test_killed_server_resumes_from_journal(tmp_path):
    # the uninterrupted reference result, via the same kernel
    request = PartitionRequest.from_dict({"app": "ckey"})
    with ServiceCore() as core:
        reference = core.evaluate(request).to_dict()

    checkpoint = tmp_path / "ckpt"
    journal = checkpoint / "cache.journal"
    proc, port = spawn_server(tmp_path, checkpoint, "serve1.log")
    try:
        client = ServiceClient(port=port, timeout_s=30)
        status, body, _ = client.submit(build_request_payload("ckey"))
        assert status == 202
        job_id = body["id"]
        # kill as soon as the journal proves work is underway -- with
        # luck mid-job, at worst just after; either way the restart
        # must replay what was journaled
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() \
                    and scan_journal(str(journal))["records"] >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("journal never gained a record")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

    records_at_kill = scan_journal(str(journal))["records"]
    assert records_at_kill >= 1

    proc, port = spawn_server(tmp_path, checkpoint, "serve2.log")
    try:
        client = ServiceClient(port=port, timeout_s=30)
        metrics = client.metrics()
        loaded = metrics["counters"].get("explore.checkpoint.loaded", 0)
        assert loaded >= records_at_kill, \
            "restart must replay the journaled evaluations"
        assert metrics["cache"]["entries"] >= records_at_kill

        # jobs are not durable (by contract) -- resubmit; the journal
        # makes the rerun cheap and the result identical
        status, body, _ = client.submit(build_request_payload("ckey"))
        assert status == 202
        assert body["id"] == job_id, "digest-keyed ids survive restarts"
        job = client.wait(job_id, timeout_s=120)
        assert job["state"] == "done"
        result = job["result"]
        assert result["verified"] is True
        assert result["summary"] == reference["summary"]
        # journal replay produced cache hits during the rerun
        assert client.metrics()["cache"]["hits"] > 0
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait(timeout=30)

"""Acceptance: a SIGKILLed server restarts warm from its checkpoint.

Spawns real ``repro serve --checkpoint`` subprocesses: the first is
killed with SIGKILL while a job is in flight (after the journal holds at
least one record); the restarted server must replay the evaluation
journal (``explore.checkpoint.loaded`` > 0 in ``/v1/metrics``) **and**
the job journal — the pre-kill job id must resolve by polling alone,
serving the exact result an uninterrupted run produces.
"""

import signal
import subprocess
import time

import pytest

from repro.core.checkpoint import scan_journal
from repro.service import (
    PartitionRequest,
    ServiceClient,
    ServiceCore,
    build_request_payload,
)

from tests.service.conftest import spawn_server


@pytest.mark.slow
def test_killed_server_resumes_from_journal(tmp_path):
    # the uninterrupted reference result, via the same kernel
    request = PartitionRequest.from_dict({"app": "ckey"})
    with ServiceCore() as core:
        reference = core.evaluate(request).to_dict()

    checkpoint = tmp_path / "ckpt"
    journal = checkpoint / "cache.journal"
    proc, port = spawn_server(tmp_path, "serve1.log",
                              checkpoint=checkpoint)
    try:
        client = ServiceClient(port=port, timeout_s=30)
        status, body, _ = client.submit(build_request_payload("ckey"))
        assert status == 202
        job_id = body["id"]
        # kill as soon as the journal proves work is underway -- with
        # luck mid-job, at worst just after; either way the restart
        # must replay what was journaled
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal.exists() \
                    and scan_journal(str(journal))["records"] >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("journal never gained a record")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

    records_at_kill = scan_journal(str(journal))["records"]
    assert records_at_kill >= 1

    proc, port = spawn_server(tmp_path, "serve2.log",
                              checkpoint=checkpoint)
    try:
        client = ServiceClient(port=port, timeout_s=30)
        metrics = client.metrics()
        loaded = metrics["counters"].get("explore.checkpoint.loaded", 0)
        assert loaded >= records_at_kill, \
            "restart must replay the journaled evaluations"
        assert metrics["cache"]["entries"] >= records_at_kill

        # jobs ARE durable: the pre-kill id must resolve by polling
        # alone -- the job journal resurrects it (requeued if it was
        # in flight at the kill; the evaluation journal makes the
        # rerun cheap and the result identical)
        status, _job = client.job(job_id)
        assert status == 200, \
            "restart must resurrect the pre-kill job from its journal"
        job = client.wait(job_id, timeout_s=120)
        assert job["state"] == "done"
        result = job["result"]
        assert result["verified"] is True
        assert result["summary"] == reference["summary"]
        # journal replay produced cache hits during the rerun
        assert client.metrics()["cache"]["hits"] > 0
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
            proc.kill()
            proc.wait(timeout=30)

"""``repro serve`` / ``repro submit`` CLI wiring and exit codes.

The exit-code contract under test (``docs/TESTING.md``): ``submit``
exits 0 when the job is done, 1 on failed jobs or an unreachable
server, 2 with ``--strict`` when the served result is not verify-gated
clean, and 4 (:data:`EXIT_REJECTED`) when the server sheds load with
HTTP 429.
"""

import json
import socket

import pytest

from repro.cli import main
from repro.service import EXIT_REJECTED, ServiceUnreachable
from repro.service.client import ServiceClient


def free_port():
    """A port nothing is listening on (bound then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def descriptor(state="queued", created=True, **extra):
    data = {"id": "jcafecafecafecafe", "state": state,
            "request_digest": "cafe" * 16, "app": "ckey",
            "tech": "cmos6-800nm", "client": "anonymous",
            "submitted_s": 1.0, "started_s": None, "finished_s": None,
            "waiters": 1, "error": None, "result": None,
            "created": created}
    data.update(extra)
    return data


class TestSubmitExitCodes:
    def test_unreachable_server_exits_1(self, capsys):
        assert main(["submit", "ckey", "--port", str(free_port()),
                     "--timeout", "0.5"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_429_exits_4(self, monkeypatch, capsys):
        def shed(self, payload):
            return 429, {"error": "full", "reason": "queue",
                         "retry_after_s": 7}, {"Retry-After": "7"}

        monkeypatch.setattr(ServiceClient, "submit", shed)
        assert main(["submit", "ckey"]) == EXIT_REJECTED
        err = capsys.readouterr().err
        assert "shedding load" in err and "7" in err

    def test_failed_job_exits_1(self, monkeypatch, capsys):
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        monkeypatch.setattr(
            ServiceClient, "wait",
            lambda self, job_id, poll_s=0.2, timeout_s=None:
            descriptor(state="failed", error="VerificationRejected: no",
                       finished_s=2.0))
        assert main(["submit", "ckey"]) == 1
        assert "VerificationRejected" in capsys.readouterr().err

    def test_strict_unverified_exits_2(self, monkeypatch, capsys):
        done = descriptor(state="done", finished_s=2.0,
                          result={"summary": "the table",
                                  "verified": False})
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        monkeypatch.setattr(
            ServiceClient, "wait",
            lambda self, job_id, poll_s=0.2, timeout_s=None: done)
        assert main(["submit", "ckey"]) == 0  # lax: served is served
        assert main(["submit", "ckey", "--strict"]) == 2

    def test_no_wait_prints_descriptor_and_exits_0(self, monkeypatch,
                                                   capsys):
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        assert main(["submit", "ckey", "--no-wait"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["id"] == "jcafecafecafecafe"

    def test_out_writes_job_json(self, monkeypatch, tmp_path, capsys):
        done = descriptor(state="done", finished_s=2.0,
                          result={"summary": "the table",
                                  "verified": True})
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        monkeypatch.setattr(
            ServiceClient, "wait",
            lambda self, job_id, poll_s=0.2, timeout_s=None: done)
        out = tmp_path / "job.json"
        assert main(["submit", "ckey", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["state"] == "done"
        assert "the table" in capsys.readouterr().out

    def test_submitted_payload_carries_the_flags(self, monkeypatch):
        seen = {}

        def record(self, payload):
            seen.update(payload)
            return 429, {"reason": "queue", "retry_after_s": 1}, {}

        monkeypatch.setattr(ServiceClient, "submit", record)
        main(["submit", "ckey", "--scale", "2", "--optimize",
              "--tech", "cmos6-45nm", "--client", "ci"])
        assert seen == {"schema": "repro-service", "version": 1,
                        "app": "ckey", "scale": 2, "optimize": True,
                        "tech": "cmos6-45nm", "client": "ci"}


class TestServeParser:
    def test_bad_tech_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--tech", "nm-nonsense"])
        assert "unknown technology node" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["serve", "--port", "-1"],
        ["serve", "--queue", "0"],
        ["serve", "--cache-entries", "0"],
        ["submit", "ckey", "--port", "0"],
        ["submit", "no-such-app"],
    ])
    def test_bad_arguments_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)

    def test_unreachable_is_distinct_from_rejected(self):
        # regression guard: 1 (unreachable) and 4 (shed) must differ so
        # CI retry policies can tell a dead server from a busy one
        assert EXIT_REJECTED == 4
        assert issubclass(ServiceUnreachable, RuntimeError)

"""``repro serve`` / ``repro submit`` CLI wiring and exit codes.

The exit-code contract under test (``docs/TESTING.md``): ``submit``
exits 0 when the job is done, 1 on failed jobs or an unreachable
server, 2 with ``--strict`` when the served result is not verify-gated
clean, and 4 (:data:`EXIT_REJECTED`) when the server sheds load with
HTTP 429.
"""

import json
import random
import socket
import subprocess

import pytest

from repro.cli import main
from repro.service import EXIT_REJECTED, ServiceUnreachable
from repro.service.client import (
    BACKOFF_FACTOR,
    BACKOFF_MAX_S,
    JITTER_RANGE,
    ServiceClient,
)

from tests.service.conftest import spawn_server


def free_port():
    """A port nothing is listening on (bound then released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def descriptor(state="queued", created=True, **extra):
    data = {"id": "jcafecafecafecafe", "state": state,
            "request_digest": "cafe" * 16, "app": "ckey",
            "tech": "cmos6-800nm", "client": "anonymous",
            "submitted_s": 1.0, "started_s": None, "finished_s": None,
            "waiters": 1, "error": None, "result": None,
            "created": created}
    data.update(extra)
    return data


class TestSubmitExitCodes:
    def test_unreachable_server_exits_1(self, capsys):
        assert main(["submit", "ckey", "--port", str(free_port()),
                     "--timeout", "0.5"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_429_exits_4(self, monkeypatch, capsys):
        def shed(self, payload):
            return 429, {"error": "full", "reason": "queue",
                         "retry_after_s": 7}, {"Retry-After": "7"}

        monkeypatch.setattr(ServiceClient, "submit", shed)
        assert main(["submit", "ckey"]) == EXIT_REJECTED
        err = capsys.readouterr().err
        assert "shedding load" in err and "7" in err

    def test_failed_job_exits_1(self, monkeypatch, capsys):
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        monkeypatch.setattr(
            ServiceClient, "wait",
            lambda self, job_id, poll_s=0.2, timeout_s=None:
            descriptor(state="failed", error="VerificationRejected: no",
                       finished_s=2.0))
        assert main(["submit", "ckey"]) == 1
        assert "VerificationRejected" in capsys.readouterr().err

    def test_strict_unverified_exits_2(self, monkeypatch, capsys):
        done = descriptor(state="done", finished_s=2.0,
                          result={"summary": "the table",
                                  "verified": False})
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        monkeypatch.setattr(
            ServiceClient, "wait",
            lambda self, job_id, poll_s=0.2, timeout_s=None: done)
        assert main(["submit", "ckey"]) == 0  # lax: served is served
        assert main(["submit", "ckey", "--strict"]) == 2

    def test_no_wait_prints_descriptor_and_exits_0(self, monkeypatch,
                                                   capsys):
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        assert main(["submit", "ckey", "--no-wait"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["id"] == "jcafecafecafecafe"

    def test_out_writes_job_json(self, monkeypatch, tmp_path, capsys):
        done = descriptor(state="done", finished_s=2.0,
                          result={"summary": "the table",
                                  "verified": True})
        monkeypatch.setattr(
            ServiceClient, "submit",
            lambda self, payload: (202, descriptor(), {}))
        monkeypatch.setattr(
            ServiceClient, "wait",
            lambda self, job_id, poll_s=0.2, timeout_s=None: done)
        out = tmp_path / "job.json"
        assert main(["submit", "ckey", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["state"] == "done"
        assert "the table" in capsys.readouterr().out

    def test_submitted_payload_carries_the_flags(self, monkeypatch):
        seen = {}

        def record(self, payload):
            seen.update(payload)
            return 429, {"reason": "queue", "retry_after_s": 1}, {}

        monkeypatch.setattr(ServiceClient, "submit", record)
        main(["submit", "ckey", "--scale", "2", "--optimize",
              "--tech", "cmos6-45nm", "--client", "ci"])
        assert seen == {"schema": "repro-service", "version": 2,
                        "app": "ckey", "scale": 2, "optimize": True,
                        "tech": "cmos6-45nm", "client": "ci"}


class TestClientBackoff:
    """Polite polling: exponential backoff, jitter, Retry-After."""

    def test_wait_backs_off_exponentially_with_jitter(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        polls = 6
        states = iter(["queued"] * polls + ["done"])
        monkeypatch.setattr(
            ServiceClient, "job",
            lambda self, job_id: (200, {"state": next(states)}))
        client = ServiceClient(rng=random.Random(7))
        job = client.wait("j1", poll_s=0.2)
        assert job["state"] == "done"
        assert len(sleeps) == polls
        # replay the same jitter draws to recover the raw intervals
        expect = random.Random(7)
        interval = 0.2
        for observed in sleeps:
            jitter = expect.uniform(*JITTER_RANGE)
            assert observed == pytest.approx(interval * jitter)
            interval = min(interval * BACKOFF_FACTOR, BACKOFF_MAX_S)
        # intervals grew strictly until the cap
        assert interval == BACKOFF_MAX_S or interval > sleeps[0]

    def test_wait_interval_is_capped(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        states = iter(["queued"] * 8 + ["done"])
        monkeypatch.setattr(
            ServiceClient, "job",
            lambda self, job_id: (200, {"state": next(states)}))
        client = ServiceClient(rng=random.Random(1))
        client.wait("j1", poll_s=4.0)
        assert max(sleeps) <= BACKOFF_MAX_S
        assert all(s > 0 for s in sleeps)

    def test_submit_with_retry_honors_retry_after(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep",
                            sleeps.append)
        responses = iter([
            (429, {"reason": "queue"}, {"Retry-After": "2"}),
            (429, {"reason": "queue", "retry_after_s": 3}, {}),
            (202, {"id": "j1", "state": "queued"}, {}),
        ])
        monkeypatch.setattr(ServiceClient, "submit",
                            lambda self, payload: next(responses))
        client = ServiceClient(rng=random.Random(3))
        status, data, _headers = client.submit_with_retry({}, retries=5)
        assert status == 202 and data["id"] == "j1"
        expect = random.Random(3)
        # header hint first, body fallback second -- both jittered
        assert sleeps[0] == pytest.approx(2 * expect.uniform(*JITTER_RANGE))
        assert sleeps[1] == pytest.approx(3 * expect.uniform(*JITTER_RANGE))

    def test_submit_with_retry_gives_up_after_retries(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep",
                            lambda s: None)
        calls = []

        def shed(self, payload):
            calls.append(1)
            return 429, {"reason": "queue", "retry_after_s": 1}, {}

        monkeypatch.setattr(ServiceClient, "submit", shed)
        client = ServiceClient(rng=random.Random(0))
        status, _data, _headers = client.submit_with_retry({}, retries=2)
        assert status == 429
        assert len(calls) == 3  # the original try + 2 retries

    def test_cli_retry_429_resubmits_then_succeeds(self, monkeypatch,
                                                   capsys):
        monkeypatch.setattr("repro.service.client.time.sleep",
                            lambda s: None)
        attempts = []

        def flaky(self, payload):
            attempts.append(1)
            if len(attempts) < 3:
                return 429, {"reason": "queue", "retry_after_s": 1}, \
                    {"Retry-After": "1"}
            return 202, descriptor(), {}

        monkeypatch.setattr(ServiceClient, "submit", flaky)
        monkeypatch.setattr(
            ServiceClient, "wait",
            lambda self, job_id, poll_s=0.2, timeout_s=None:
            descriptor(state="done", finished_s=2.0,
                       result={"summary": "the table",
                               "verified": True}))
        assert main(["submit", "ckey", "--retry-429", "5"]) == 0
        assert len(attempts) == 3

    def test_cli_without_retry_429_exits_4_immediately(self,
                                                       monkeypatch):
        calls = []

        def shed(self, payload):
            calls.append(1)
            return 429, {"reason": "queue", "retry_after_s": 1}, \
                {"Retry-After": "1"}

        monkeypatch.setattr(ServiceClient, "submit", shed)
        assert main(["submit", "ckey"]) == EXIT_REJECTED
        assert len(calls) == 1


class TestEphemeralPort:
    """``repro serve --port 0``: the OS picks, the announce line tells."""

    def test_port_zero_round_trip(self, tmp_path, capsys):
        proc, port = spawn_server(tmp_path, "serve.log")
        try:
            assert port != 0
            assert main(["submit", "ckey", "--port", str(port),
                         "--wait-timeout", "120"]) == 0
            captured = capsys.readouterr()
            assert captured.out.strip(), "summary must reach stdout"
            assert "done" in captured.err
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=30)


class TestServeParser:
    def test_bad_tech_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--tech", "nm-nonsense"])
        assert "unknown technology node" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["serve", "--port", "-1"],
        ["serve", "--queue", "0"],
        ["serve", "--cache-entries", "0"],
        ["submit", "ckey", "--port", "0"],
        ["submit", "no-such-app"],
    ])
    def test_bad_arguments_rejected(self, argv):
        with pytest.raises(SystemExit):
            main(argv)

    def test_unreachable_is_distinct_from_rejected(self):
        # regression guard: 1 (unreachable) and 4 (shed) must differ so
        # CI retry policies can tell a dead server from a busy one
        assert EXIT_REJECTED == 4
        assert issubclass(ServiceUnreachable, RuntimeError)

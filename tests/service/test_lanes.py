"""Parallel evaluation lanes: sharding, invariants, speedup.

The tentpole contract under test: jobs shard across lanes by request
digest (same digest → same lane, always), N identical submissions still
cost exactly one evaluation, every lane owns its kernel sibling while
sharing the cache/tracer, and ``lanes=4`` is measurably faster than
``lanes=1`` on concurrent **distinct** submissions.
"""

import asyncio
import threading
import time

import pytest

from repro.cli import main
from repro.obs import Tracer
from repro.service import (
    JobManager,
    ServiceCore,
    ServiceServer,
    build_request_payload,
    lane_for_digest,
)

from tests.service.test_jobs import (
    StubCore,
    StubResult,
    drain_until_finished,
    request_for,
)
from tests.service.test_server import serve_and_call


class SlowStubCore(StubCore):
    """A stub kernel whose evaluations take real wall-clock time."""

    def __init__(self, delay_s=0.1):
        super().__init__()
        self.delay_s = delay_s

    def evaluate(self, request, progress=None):
        time.sleep(self.delay_s)
        return super().evaluate(request, progress)


def requests_on_distinct_lanes(lanes, count):
    """``count`` requests whose digests shard onto ``count`` different
    lanes of a ``lanes``-lane pool (digest sharding is deterministic,
    so this is a plain search, not a retry loop)."""
    picked, seen = [], set()
    scale = 1
    while len(picked) < count:
        request = request_for(scale=scale)
        lane = lane_for_digest(request.digest(), lanes)
        if lane not in seen:
            seen.add(lane)
            picked.append(request)
        scale += 1
        assert scale < 10_000, "digest sharding is badly skewed"
    return picked


# ---------------------------------------------------------------------------
# Sharding determinism
# ---------------------------------------------------------------------------

class TestSharding:
    def test_lane_is_a_pure_function_of_the_digest(self):
        digest = request_for().digest()
        for lanes in (1, 2, 3, 4, 7):
            lane = lane_for_digest(digest, lanes)
            assert 0 <= lane < lanes
            assert all(lane_for_digest(digest, lanes) == lane
                       for _ in range(10))

    def test_single_lane_takes_everything(self):
        assert all(lane_for_digest(request_for(scale=s).digest(), 1) == 0
                   for s in range(1, 20))

    def test_distinct_digests_spread_across_lanes(self):
        lanes = 4
        hit = {lane_for_digest(request_for(scale=s).digest(), lanes)
               for s in range(1, 65)}
        assert hit == set(range(lanes)), \
            "64 distinct digests must reach all 4 lanes"

    def test_dispatch_honors_the_shard(self):
        manager = JobManager(StubCore(), lanes=4)
        for scale in range(1, 17):
            job, _ = manager.submit(request_for(scale=scale))
            assert job.lane == lane_for_digest(job.digest, 4)

    def test_lane_pool_construction(self):
        tracer = Tracer("lanes")
        manager = JobManager(StubCore(), lanes=4, tracer=tracer)
        assert manager.lanes == 4
        assert tracer.counters["service.lanes.spawned"] == 3
        assert len(manager.stats()["lanes"]) == 4
        with pytest.raises(ValueError):
            JobManager(StubCore(), lanes=0)


# ---------------------------------------------------------------------------
# Kernel siblings
# ---------------------------------------------------------------------------

class TestSpawn:
    def test_spawn_shares_cache_and_tracer_not_engines(self):
        tracer = Tracer("spawn")
        with ServiceCore(tracer=tracer) as core:
            sibling = core.spawn()
            try:
                assert sibling is not core
                assert sibling.cache is core.cache
                assert sibling.tracer is tracer
                assert sibling.verify == core.verify
                assert sibling.timeout == core.timeout
            finally:
                sibling.close()

    def test_manager_gives_each_lane_its_own_core(self):
        manager = JobManager(StubCore(), lanes=3)
        cores = [lane.core for lane in manager._lanes]
        # StubCore.spawn returns self; the real guarantee under test is
        # the shape: lane 0 keeps the primary, one kernel per lane.
        assert cores[0] is manager.core
        assert len(cores) == 3


# ---------------------------------------------------------------------------
# Invariants under concurrency
# ---------------------------------------------------------------------------

class TestInvariants:
    def test_one_evaluation_per_unique_digest_under_mixed_load(self):
        """M clients × K mixed requests: duplicates coalesce per digest
        no matter which lane they shard to."""
        core = SlowStubCore(delay_s=0.02)
        tracer = Tracer("lanes")
        manager = JobManager(core, lanes=4, max_queue=256,
                             max_pending_per_client=64, tracer=tracer)

        clients, spread = 6, 4  # 24 submissions, 4 unique digests
        async def scenario():
            jobs = {}
            for client in range(clients):
                for scale in range(1, spread + 1):
                    job, _ = manager.submit(request_for(
                        scale=scale, client=f"c{client}"))
                    jobs[job.id] = job
            assert len(jobs) == spread
            await drain_until_finished(manager, *jobs.values())
            await manager.close()
            return jobs

        jobs = asyncio.run(scenario())
        assert len(core.calls) == spread, \
            "exactly one evaluation per unique digest"
        assert tracer.counters["service.jobs.submitted"] == spread
        assert tracer.counters["service.jobs.coalesced"] \
            == clients * spread - spread
        for job in jobs.values():
            assert job.state == "done"
            assert job.waiters == clients

    def test_fairness_bound_holds_across_lanes(self):
        manager = JobManager(StubCore(), lanes=4, max_queue=64,
                             max_pending_per_client=2)
        manager.submit(request_for(scale=1, client="flood"))
        manager.submit(request_for(scale=2, client="flood"))
        from repro.service import AdmissionError
        with pytest.raises(AdmissionError):
            manager.submit(request_for(scale=3, client="flood"))
        job, created = manager.submit(request_for(scale=3, client="ok"))
        assert created

    def test_lanes_spread_the_retry_after_estimate(self):
        # the drain-time hint divides the backlog across the pool
        single = JobManager(StubCore(), lanes=1, max_queue=256,
                            max_pending_per_client=256)
        pooled = JobManager(StubCore(), lanes=4, max_queue=256,
                            max_pending_per_client=256)
        for target in (single, pooled):
            target._last_eval_s = 4.0
            for scale in range(1, 17):
                target.submit(request_for(scale=scale))
        assert pooled.retry_after_s() < single.retry_after_s()


# ---------------------------------------------------------------------------
# Speedup
# ---------------------------------------------------------------------------

class TestSpeedup:
    def drain_wall_clock(self, lanes, requests, delay_s):
        manager = JobManager(SlowStubCore(delay_s=delay_s), lanes=lanes,
                             max_queue=256, max_pending_per_client=256)

        async def scenario():
            jobs = [manager.submit(request)[0] for request in requests]
            start = time.monotonic()
            await drain_until_finished(manager, *jobs)
            elapsed = time.monotonic() - start
            await manager.close()
            return elapsed

        return asyncio.run(scenario())

    def test_four_lanes_beat_one_on_distinct_submits(self):
        """The tentpole acceptance: concurrent distinct submissions
        drain measurably faster across 4 lanes than through 1."""
        requests = requests_on_distinct_lanes(lanes=4, count=4)
        delay = 0.15
        serial = self.drain_wall_clock(1, requests, delay)
        parallel = self.drain_wall_clock(4, requests, delay)
        assert serial >= 4 * delay * 0.9
        assert parallel < serial * 0.75, \
            f"4 lanes ({parallel:.2f}s) must beat 1 ({serial:.2f}s)"


# ---------------------------------------------------------------------------
# End-to-end over real sockets
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_lanes_serve_bit_identical_verified_results(self, capsys):
        """A 4-lane server fed concurrent mixed submissions still
        serves verify-gated results bit-identical to ``repro run``."""
        assert main(["run", "ckey"]) == 0
        cli_stdout = capsys.readouterr().out

        tracer = Tracer("lanes-e2e")
        server = ServiceServer(lanes=4, max_queue=64,
                               max_pending_per_client=32, tracer=tracer)

        def work(client):
            assert client.healthz()["lanes"] == 4
            payloads = [build_request_payload("ckey", client=f"c{i}")
                        for i in range(6)]
            payloads += [build_request_payload("ckey", scale=2),
                         build_request_payload("ckey", scale=3)]
            responses = [None] * len(payloads)

            def post(index):
                responses[index] = client.submit(payloads[index])

            threads = [threading.Thread(target=post, args=(i,))
                       for i in range(len(payloads))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(status == 202 for status, _b, _h in responses)
            job_ids = {body["id"] for _s, body, _h in responses}
            assert len(job_ids) == 3, "3 unique digests"
            jobs = [client.wait(job_id, timeout_s=120)
                    for job_id in job_ids]
            return jobs, client.metrics()

        jobs, metrics = serve_and_call(server, work)
        assert all(job["state"] == "done" for job in jobs)
        assert all(job["result"]["verified"] for job in jobs)
        assert metrics["counters"]["service.evaluations"] == 3, \
            "one evaluation per unique digest across lanes"
        lanes_used = {job["lane"] for job in jobs}
        assert all(lane in range(4) for lane in lanes_used)
        baseline = next(job for job in jobs
                        if job["result"]["summary"] + "\n" == cli_stdout)
        assert baseline["waiters"] == 6
